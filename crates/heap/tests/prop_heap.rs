//! Property-based tests for the heap substrate.

use nvmgc_heap::verify::verify_heap;
use nvmgc_heap::{Addr, ClassTable, DevicePlacement, Heap, HeapConfig, RegionKind};
use proptest::prelude::*;

fn classes() -> ClassTable {
    let mut t = ClassTable::new();
    t.register("pair", 2, 16);
    t.register("leaf", 0, 8);
    t.register("wide", 5, 0);
    t
}

fn heap() -> Heap {
    Heap::new(
        HeapConfig {
            region_size: 1 << 13,
            heap_regions: 64,
            young_regions: 32,
            placement: DevicePlacement::all_nvm(),
            card_table: false,
        },
        classes(),
    )
}

/// An abstract graph-building script: (class, parent_choice, slot_choice).
fn arb_script() -> impl Strategy<Value = Vec<(u8, u16, u8)>> {
    prop::collection::vec((0u8..3, any::<u16>(), any::<u8>()), 1..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Addresses roundtrip through encode/decode for any region/offset.
    #[test]
    fn addr_roundtrip(region in 0u32..100_000, offset in 0u32..(1 << 20), shift in 20u32..24) {
        let offset = offset & ((1 << shift) - 1);
        let a = Addr::from_parts(region, offset, shift);
        prop_assert_eq!(a.region(shift), region);
        prop_assert_eq!(a.offset(shift), offset);
        prop_assert!(!a.is_null());
    }

    /// Any graph built through the public API verifies cleanly, and the
    /// digest is reproducible.
    #[test]
    fn built_graphs_always_verify(script in arb_script()) {
        let build = || {
            let mut h = heap();
            let mut eden = h.take_region(RegionKind::Eden).unwrap();
            let mut objs: Vec<Addr> = Vec::new();
            let mut roots: Vec<Addr> = Vec::new();
            for &(class, parent, slot) in &script {
                let obj = loop {
                    match h.alloc_object(eden, class as u32) {
                        Some(o) => break o,
                        None => eden = h.take_region(RegionKind::Eden).unwrap(),
                    }
                };
                h.write_data_safe(obj, objs.len() as u64);
                if objs.is_empty() || parent % 3 == 0 {
                    roots.push(obj);
                } else {
                    let p = objs[parent as usize % objs.len()];
                    let nrefs = h.num_refs(p);
                    if nrefs == 0 {
                        roots.push(obj);
                    } else {
                        let s = h.ref_slot(p, slot as u32 % nrefs);
                        h.write_ref_with_barrier(s, obj);
                    }
                }
                objs.push(obj);
            }
            let digest = verify_heap(&h, &roots).expect("graph verifies");
            (digest, objs.len())
        };
        let (d1, n1) = build();
        let (d2, n2) = build();
        prop_assert_eq!(n1, n2);
        prop_assert_eq!(d1.checksum, d2.checksum);
        prop_assert!(d1.objects >= 1);
        prop_assert!(d1.objects <= script.len() as u64);
    }

    /// The write barrier records exactly the old→young stores.
    #[test]
    fn barrier_records_only_old_to_young(stores in prop::collection::vec((any::<bool>(), any::<bool>()), 1..50)) {
        let mut h = heap();
        let eden = h.take_region(RegionKind::Eden).unwrap();
        let old = h.take_region(RegionKind::Old).unwrap();
        let mut expected = 0usize;
        for (i, &(from_old, to_young)) in stores.iter().enumerate() {
            let src = if from_old {
                h.alloc_object(old, 0)
            } else {
                h.alloc_object(eden, 0)
            };
            let dst = if to_young {
                h.alloc_object(eden, 1)
            } else {
                h.alloc_object(old, 1)
            };
            let (Some(src), Some(dst)) = (src, dst) else { break };
            let slot = h.ref_slot(src, (i % 2) as u32);
            let recorded = h.write_ref_with_barrier(slot, dst);
            prop_assert_eq!(recorded, from_old && to_young);
            if recorded {
                expected += 1;
            }
        }
        let total: usize = h
            .eden()
            .iter()
            .map(|&r| h.region(r).remset.len())
            .sum();
        prop_assert_eq!(total, expected);
    }

    /// Region take/release round-trips keep the free count consistent.
    #[test]
    fn region_lifecycle_conserves_free_count(ops in prop::collection::vec(any::<bool>(), 1..100)) {
        let mut h = heap();
        let initial = h.free_count();
        let mut taken: Vec<_> = Vec::new();
        for &take in &ops {
            if take {
                if let Ok(r) = h.take_region(RegionKind::Old) {
                    taken.push(r);
                }
            } else if let Some(r) = taken.pop() {
                h.release_region(r).unwrap();
            }
        }
        prop_assert_eq!(h.free_count() + taken.len() + h.old().len() - taken.len(), initial);
        for r in taken.drain(..) {
            h.release_region(r).unwrap();
        }
        prop_assert_eq!(h.free_count(), initial);
    }
}

/// Helper: write a payload word only when the class has payload.
trait SafeWrite {
    fn write_data_safe(&mut self, obj: Addr, v: u64);
}

impl SafeWrite for Heap {
    fn write_data_safe(&mut self, obj: Addr, v: u64) {
        let class = self.class_of(obj);
        if self.classes().get(class).data_bytes >= 8 {
            self.write_data(obj, 0, v);
        }
    }
}
