//! Error paths of the heap verifier.
//!
//! Each test corrupts a heap on purpose and asserts that `verify_heap`
//! (or `verify_remsets`) reports the *specific* `VerifyError` variant —
//! a typed error, not a panic and not a bogus digest. The fault-injection
//! plane leans on these errors to turn crash-point corruption into
//! diagnosable failures, so their precision is load-bearing.

use nvmgc_heap::verify::{verify_heap, verify_remsets, VerifyError};
use nvmgc_heap::{
    Addr, ClassTable, DevicePlacement, Header, Heap, HeapConfig, HeapError, RegionAllocator,
    RegionKind,
};

fn heap() -> Heap {
    let mut classes = ClassTable::new();
    classes.register("node", 2, 16);
    Heap::new(
        HeapConfig {
            region_size: 1 << 12,
            heap_regions: 16,
            young_regions: 8,
            placement: DevicePlacement::all_nvm(),
            card_table: false,
        },
        classes,
    )
}

#[test]
fn dangling_slot_is_reported() {
    let mut h = heap();
    let eden = h.take_region(RegionKind::Eden).unwrap();
    let a = h.alloc_object(eden, 0).unwrap();
    // Point a's first slot far outside every region.
    let bogus = Addr(h.addr_of(15, 0).raw() + (1 << 20));
    h.write_ref(h.ref_slot(a, 0), bogus);
    assert_eq!(
        verify_heap(&h, &[a]),
        Err(VerifyError::DanglingRef { target: bogus })
    );
}

#[test]
fn reference_into_wrong_region_kind_is_reported() {
    let mut h = heap();
    let eden = h.take_region(RegionKind::Eden).unwrap();
    let a = h.alloc_object(eden, 0).unwrap();
    // An address inside the heap range but in a never-taken Free region.
    let free_region = (0..h.region_count() as u32)
        .find(|&r| h.region(r).kind() == RegionKind::Free)
        .expect("fresh heap has free regions");
    let into_free = h.addr_of(free_region, 0);
    h.write_ref(h.ref_slot(a, 0), into_free);
    assert_eq!(
        verify_heap(&h, &[a]),
        Err(VerifyError::RefIntoFreeRegion { target: into_free })
    );
}

#[test]
fn cycle_through_a_dead_object_is_reported_and_terminates() {
    let mut h = heap();
    let eden = h.take_region(RegionKind::Eden).unwrap();
    let eden2 = h.take_region(RegionKind::Eden).unwrap();
    let a = h.alloc_object(eden, 0).unwrap();
    let b = h.alloc_object(eden2, 0).unwrap();
    // Live cycle a <-> b, then kill b's region: the verifier must follow
    // the cycle into the dead object exactly once (no hang) and name it.
    h.write_ref(h.ref_slot(a, 0), b);
    h.write_ref(h.ref_slot(b, 0), a);
    assert!(verify_heap(&h, &[a]).is_ok(), "cycle is legal while live");
    h.release_region(eden2).unwrap();
    assert_eq!(
        verify_heap(&h, &[a]),
        Err(VerifyError::RefIntoFreeRegion { target: b })
    );
}

#[test]
fn reference_past_allocation_watermark_is_reported() {
    let mut h = heap();
    let eden = h.take_region(RegionKind::Eden).unwrap();
    let a = h.alloc_object(eden, 0).unwrap();
    // A plausible-looking object address above eden's watermark.
    let past_top = Addr(h.addr_of(eden, 0).raw() + 2048);
    h.write_ref(h.ref_slot(a, 0), past_top);
    assert_eq!(
        verify_heap(&h, &[a]),
        Err(VerifyError::RefPastTop { target: past_top })
    );
}

#[test]
fn stale_forwarding_header_is_reported() {
    let mut h = heap();
    let eden = h.take_region(RegionKind::Eden).unwrap();
    let surv = h.take_region(RegionKind::Survivor).unwrap();
    let a = h.alloc_object(eden, 0).unwrap();
    let copy = h.alloc_object(surv, 0).unwrap();
    // A GC that died mid-cycle would leave a forwarded header behind.
    h.set_header(a, Header::forwarding(copy));
    assert_eq!(
        verify_heap(&h, &[a]),
        Err(VerifyError::StaleForwarding { obj: a })
    );
}

#[test]
fn missing_remset_entry_is_reported() {
    let mut h = heap();
    let old = h.take_region(RegionKind::Old).unwrap();
    let eden = h.take_region(RegionKind::Eden).unwrap();
    let anchor = h.alloc_object(old, 0).unwrap();
    let young = h.alloc_object(eden, 0).unwrap();
    let slot = h.ref_slot(anchor, 0);
    // Store the cross-region reference *without* the write barrier.
    h.write_ref(slot, young);
    assert_eq!(
        verify_remsets(&h, &[anchor]),
        Err(VerifyError::MissingRemsetEntry {
            slot,
            target: young
        })
    );
    // The barrier repairs it.
    h.write_ref_with_barrier(slot, young);
    assert!(verify_remsets(&h, &[anchor]).is_ok());
}

#[test]
fn double_release_is_a_typed_error_not_a_debug_assert() {
    // Pinned regression: `RegionAllocator::release` on an already-free
    // region used to be a `debug_assert_ne!` — silent free-count
    // corruption in release builds. It is now a typed error.
    let mut a = RegionAllocator::new(4);
    let r = a.take(RegionKind::Eden).unwrap();
    a.release(r, 128).unwrap();
    assert_eq!(a.release(r, 128), Err(HeapError::DoubleRelease(r)));
    // The failed release did not double-push the free stack.
    assert_eq!(a.free_count(), 4);
}

#[test]
fn heap_double_release_surfaces_the_allocator_error() {
    let mut h = heap();
    let eden = h.take_region(RegionKind::Eden).unwrap();
    h.release_region(eden).unwrap();
    assert_eq!(h.release_region(eden), Err(HeapError::DoubleRelease(eden)));
}

#[test]
fn diverged_rejects_mismatched_view_lengths() {
    // Pinned regression: `diverged` used to `debug_assert_eq!` the view
    // length; in release builds a truncated durable view would silently
    // mis-classify regions during crash recovery.
    let mut a = RegionAllocator::new(4);
    let _ = a.take(RegionKind::Eden).unwrap();
    let short = a.durable_view(0);
    let view = RegionAllocator::new(5).durable_view(0);
    assert_eq!(
        a.diverged(&view),
        Err(HeapError::ViewLenMismatch {
            expected: 4,
            found: 5
        })
    );
    // A well-formed view still classifies normally.
    assert!(a.diverged(&short).is_ok());
}

#[test]
fn forward_to_refuses_to_clobber_a_forwarding_word() {
    // Pinned regression: installing a forwarding pointer over an
    // already-forwarded header was `debug_assert!`-only — release builds
    // silently lost the first forwardee, splitting the object graph.
    let mut h = heap();
    let eden = h.take_region(RegionKind::Eden).unwrap();
    let surv = h.take_region(RegionKind::Survivor).unwrap();
    let a = h.alloc_object(eden, 0).unwrap();
    let c1 = h.alloc_object(surv, 0).unwrap();
    let c2 = h.alloc_object(surv, 0).unwrap();
    let first = h.header(a).forward_to(c1).unwrap();
    h.set_header(a, first);
    let raw = h.header(a).raw();
    assert_eq!(
        h.header(a).forward_to(c2),
        Err(HeapError::AlreadyForwarded { raw })
    );
    assert_eq!(h.header(a).forwardee(), Some(c1));
}
