//! Humongous-region allocation and lifecycle edge cases.

use nvmgc_heap::verify::verify_heap;
use nvmgc_heap::{ClassTable, DevicePlacement, Heap, HeapConfig, HeapError, RegionKind};

fn classes() -> ClassTable {
    let mut t = ClassTable::new();
    t.register("pair", 2, 16);
    t.register("big", 1, 6000); // > half of an 8 KiB region
    t.register("too-big", 0, 9000); // > a whole region
    t
}

fn heap(regions: u32) -> Heap {
    Heap::new(
        HeapConfig {
            region_size: 1 << 13,
            heap_regions: regions,
            young_regions: regions / 2,
            placement: DevicePlacement::all_nvm(),
            card_table: false,
        },
        classes(),
    )
}

#[test]
fn humongous_allocation_takes_a_dedicated_region() {
    let mut h = heap(8);
    let free_before = h.free_count();
    let big = h.alloc_humongous(1).unwrap();
    assert_eq!(h.free_count(), free_before - 1);
    assert_eq!(h.humongous().len(), 1);
    let region = big.region(h.shift());
    assert_eq!(h.region(region).kind(), RegionKind::Humongous);
    assert!(!h.is_young(big));
    // The object is fully usable.
    h.write_data(big, 0, 0xCAFE);
    assert_eq!(h.read_data(big, 0), 0xCAFE);
    verify_heap(&h, &[big]).unwrap();
}

#[test]
fn oversized_objects_are_rejected() {
    let mut h = heap(8);
    match h.alloc_humongous(2) {
        Err(HeapError::ObjectTooLarge { size }) => assert!(size > 1 << 13),
        other => panic!("expected ObjectTooLarge, got {other:?}"),
    }
}

#[test]
fn humongous_allocation_fails_cleanly_when_out_of_regions() {
    let mut h = heap(2);
    h.alloc_humongous(1).unwrap();
    h.alloc_humongous(1).unwrap();
    assert!(matches!(h.alloc_humongous(1), Err(HeapError::OutOfRegions)));
}

#[test]
fn releasing_a_humongous_region_returns_it_to_the_free_list() {
    let mut h = heap(4);
    let big = h.alloc_humongous(1).unwrap();
    let region = big.region(h.shift());
    let free_before = h.free_count();
    h.release_region(region).unwrap();
    assert_eq!(h.free_count(), free_before + 1);
    assert!(h.humongous().is_empty());
    assert_eq!(h.region(region).kind(), RegionKind::Free);
}

#[test]
fn humongous_counts_as_barrier_source_and_target() {
    let mut h = heap(8);
    let big = h.alloc_humongous(1).unwrap();
    let eden = h.take_region(RegionKind::Eden).unwrap();
    let young = h.alloc_object(eden, 0).unwrap();
    // humongous -> young: recorded (humongous is old-like).
    assert!(h.write_ref_with_barrier(h.ref_slot(big, 0), young));
    // old -> humongous: recorded (humongous is a tracked target).
    let old = h.take_region(RegionKind::Old).unwrap();
    let anchor = h.alloc_object(old, 0).unwrap();
    assert!(h.write_ref_with_barrier(h.ref_slot(anchor, 0), big));
    let hr = big.region(h.shift());
    assert_eq!(h.region(hr).remset.len(), 1);
}
