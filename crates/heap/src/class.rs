//! Object class descriptions.
//!
//! Every object carries a class id in its header; the class table maps the
//! id to a layout: how many reference slots the object has and how many
//! payload (non-reference) bytes follow them. Array-like objects are
//! modeled as classes generated per size bucket, so the layout stays fully
//! static — the GC never needs a per-object length field.

use crate::object::HEADER_BYTES;

/// Index into the [`ClassTable`].
pub type ClassId = u32;

/// Layout description for one class.
#[derive(Debug, Clone)]
pub struct ClassInfo {
    /// Human-readable name (diagnostics only).
    pub name: String,
    /// Number of reference slots (8 bytes each) following the header.
    pub num_refs: u32,
    /// Payload bytes following the reference slots.
    pub data_bytes: u32,
}

impl ClassInfo {
    /// Total object size in bytes (header + refs + payload), 8-byte
    /// aligned.
    pub fn size(&self) -> u32 {
        let raw = HEADER_BYTES + self.num_refs * 8 + self.data_bytes;
        (raw + 7) & !7
    }
}

/// The table of all classes known to a heap.
///
/// Class ids are dense indices; the table is append-only.
#[derive(Debug, Default, Clone)]
pub struct ClassTable {
    classes: Vec<ClassInfo>,
}

impl ClassTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        ClassTable::default()
    }

    /// Registers a class and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` classes are registered.
    pub fn register(&mut self, name: &str, num_refs: u32, data_bytes: u32) -> ClassId {
        let id = u32::try_from(self.classes.len()).expect("class table overflow");
        self.classes.push(ClassInfo {
            name: name.to_owned(),
            num_refs,
            data_bytes,
        });
        id
    }

    /// Looks up a class by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never registered.
    #[inline]
    pub fn get(&self, id: ClassId) -> &ClassInfo {
        &self.classes[id as usize]
    }

    /// Number of registered classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Iterates over `(id, info)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ClassId, &ClassInfo)> {
        self.classes
            .iter()
            .enumerate()
            .map(|(i, c)| (i as ClassId, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_includes_header_refs_and_payload() {
        let c = ClassInfo {
            name: "node".into(),
            num_refs: 2,
            data_bytes: 16,
        };
        assert_eq!(c.size(), 8 + 16 + 16);
    }

    #[test]
    fn size_is_eight_byte_aligned() {
        let c = ClassInfo {
            name: "odd".into(),
            num_refs: 1,
            data_bytes: 3,
        };
        assert_eq!(c.size() % 8, 0);
        assert!(c.size() >= 8 + 8 + 3);
    }

    #[test]
    fn register_and_get() {
        let mut t = ClassTable::new();
        let a = t.register("a", 0, 8);
        let b = t.register("b", 4, 0);
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(t.get(a).data_bytes, 8);
        assert_eq!(t.get(b).num_refs, 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn iter_yields_ids_in_order() {
        let mut t = ClassTable::new();
        t.register("x", 0, 0);
        t.register("y", 1, 0);
        let ids: Vec<_> = t.iter().map(|(i, _)| i).collect();
        assert_eq!(ids, vec![0, 1]);
    }
}
