//! Remembered sets.
//!
//! G1 keeps, per region, the set of locations outside the region that
//! contain references into it. For young collection the relevant entries
//! are old-space slots pointing at young objects; the mutator write
//! barrier inserts them, and the GC treats the referenced objects as
//! roots (paper §2.1). Entries may go stale (the slot was overwritten);
//! the collector filters them when scanning, as HotSpot does.

use crate::addr::Addr;
use nvmgc_memsim::FxHashSet;

/// A per-region remembered set of slot addresses.
#[derive(Debug, Default, Clone)]
pub struct RememberedSet {
    slots: FxHashSet<u64>,
}

impl RememberedSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        RememberedSet::default()
    }

    /// Records that `slot` (an address of a reference field in the old
    /// space) points into this region. Returns `true` if newly inserted.
    pub fn insert(&mut self, slot: Addr) -> bool {
        self.slots.insert(slot.raw())
    }

    /// Number of recorded slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Iterates over the recorded slots in arbitrary order — deterministic
    /// for a given insertion history, since the hasher is stateless.
    pub fn iter(&self) -> impl Iterator<Item = Addr> + '_ {
        self.slots.iter().map(|&s| Addr(s))
    }

    /// Drains the set into a sorted vector (sorted for determinism).
    pub fn drain_sorted(&mut self) -> Vec<Addr> {
        let mut v: Vec<Addr> = self.slots.drain().map(Addr).collect();
        v.sort_unstable();
        v
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.slots.clear();
    }

    /// Keeps only the slots satisfying the predicate (remset scrubbing).
    pub fn retain<F: FnMut(Addr) -> bool>(&mut self, mut f: F) {
        self.slots.retain(|&s| f(Addr(s)));
    }

    /// Approximate memory footprint in bytes (for access-cost charging).
    pub fn approx_bytes(&self) -> u64 {
        (self.slots.len() * 16) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_deduplicates() {
        let mut rs = RememberedSet::new();
        assert!(rs.insert(Addr(8)));
        assert!(!rs.insert(Addr(8)));
        assert!(rs.insert(Addr(16)));
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn drain_sorted_is_sorted_and_empties() {
        let mut rs = RememberedSet::new();
        for a in [40u64, 8, 24, 16] {
            rs.insert(Addr(a));
        }
        let v = rs.drain_sorted();
        assert_eq!(v, vec![Addr(8), Addr(16), Addr(24), Addr(40)]);
        assert!(rs.is_empty());
    }

    #[test]
    fn clear_empties() {
        let mut rs = RememberedSet::new();
        rs.insert(Addr(8));
        rs.clear();
        assert!(rs.is_empty());
        assert_eq!(rs.approx_bytes(), 0);
    }
}
