//! Two-level crash-consistent region allocator (llfree-style).
//!
//! Region allocation used to be an ad-hoc `Vec<RegionId>` free list with
//! no persistent story: after a power failure the free-set was whatever
//! the volatile heap happened to hold. This module splits allocation into
//! the two levels of llfree:
//!
//! - a **lower table** of per-region entries (`kind`, `epoch`,
//!   `watermark`) that is the persistent truth. The table itself lives in
//!   ordinary memory here — the heap knows nothing about timing — but
//!   every mutation marks the region *dirty*, and `nvmgc-core` journals
//!   dirty entries through the durability ledger (`persist_meta` +
//!   charged NVM line traffic) at GC safepoints;
//! - a volatile **upper free-stack** fast path that orders free regions
//!   for O(1) take/release.
//!
//! The `epoch` field is a global monotone event counter stamped into an
//! entry on every take and release. It makes recovery *exact*: the upper
//! stack pushes released regions in release order, so sorting free
//! regions by `(epoch ascending, id descending)` reconstructs the stack
//! byte-for-byte — never-taken regions (epoch 0) sort id-descending,
//! which is exactly the seed order `(0..n).rev()`. A crashed-and-
//! recovered heap therefore allocates the same regions in the same order
//! as a never-crashed one.
//!
//! For crash classification the allocator keeps, per region, the last
//! two *journaled* snapshots (`Shadow`). `persist_meta` is synchronous,
//! so a snapshot journaled at time `t` is durable for any crash at
//! `at >= t`; the depth-2 history guards the edge where a ledger
//! watermark outruns the crash instant. [`RegionAllocator::durable_view`]
//! folds these into the state the medium would hold — a mixture of
//! per-region snapshot times, i.e. genuinely *partially durable*
//! metadata — and [`RegionAllocator::rebuild_free`] rebuilds the upper
//! stack after `nvmgc-core` reconciles the divergent entries.

use crate::region::{RegionId, RegionKind};
use crate::HeapError;

/// One persistent lower-table entry: the durable facts about a region
/// that recovery needs to rebuild the free-set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LowerEntry {
    /// The region's role.
    pub kind: RegionKind,
    /// Global event counter at the last take/release of this region.
    /// Orders free regions for exact upper-stack reconstruction.
    pub epoch: u64,
    /// Allocation watermark (bytes bumped) recorded at the last journal
    /// event: 0 at take, the final `used()` at release. Advisory — object
    /// payload durability is governed by the header-map install fences.
    pub watermark: u32,
}

impl LowerEntry {
    /// The mkfs state: free, never taken, empty.
    pub const INITIAL: LowerEntry = LowerEntry {
        kind: RegionKind::Free,
        epoch: 0,
        watermark: 0,
    };
}

/// The last two journaled snapshots of a region's lower entry, with the
/// simulated times their fences completed. Both start as the trivially
/// durable [`LowerEntry::INITIAL`] at time 0.
#[derive(Debug, Clone, Copy)]
struct Shadow {
    prev: (u64, LowerEntry),
    last: (u64, LowerEntry),
}

impl Shadow {
    const INITIAL: Shadow = Shadow {
        prev: (0, LowerEntry::INITIAL),
        last: (0, LowerEntry::INITIAL),
    };

    /// The newest snapshot durable at a crash at `at`.
    fn durable_at(&self, at: u64) -> LowerEntry {
        if self.last.0 <= at {
            self.last.1
        } else if self.prev.0 <= at {
            self.prev.1
        } else {
            LowerEntry::INITIAL
        }
    }
}

/// The two-level region allocator. Covers exactly the Java-heap regions
/// (`0..n`); auxiliary write-cache regions are outside the persistent
/// heap and bypass it.
#[derive(Debug, Clone)]
pub struct RegionAllocator {
    /// Volatile truth: the current lower entry of every region.
    lower: Vec<LowerEntry>,
    /// Upper free-stack (LIFO; `pop` takes the top).
    free: Vec<RegionId>,
    /// Global take/release event counter (epoch source).
    clock: u64,
    /// Regions whose lower entry changed since the last journal drain,
    /// in first-dirtied order.
    dirty: Vec<RegionId>,
    dirty_flag: Vec<bool>,
    /// Per-region journal history (see module docs).
    shadow: Vec<Shadow>,
}

impl RegionAllocator {
    /// Creates an allocator with all `n` regions free, ordered so the
    /// lowest ids pop first (deterministic seed order).
    pub fn new(n: u32) -> RegionAllocator {
        RegionAllocator {
            lower: vec![LowerEntry::INITIAL; n as usize],
            free: (0..n).rev().collect(),
            clock: 0,
            dirty: Vec::new(),
            dirty_flag: vec![false; n as usize],
            shadow: vec![Shadow::INITIAL; n as usize],
        }
    }

    /// Number of free regions.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// The upper free-stack, bottom to top (`pop` order is reversed).
    pub fn free_stack(&self) -> &[RegionId] {
        &self.free
    }

    /// The current (volatile) lower entry of a region.
    pub fn lower(&self, id: RegionId) -> LowerEntry {
        self.lower[id as usize]
    }

    /// The global event counter.
    pub fn epoch(&self) -> u64 {
        self.clock
    }

    fn mark(&mut self, id: RegionId) {
        if !self.dirty_flag[id as usize] {
            self.dirty_flag[id as usize] = true;
            self.dirty.push(id);
        }
    }

    /// Takes the top free region for `kind`, stamping its lower entry.
    /// Returns `None` when the heap is out of regions.
    pub fn take(&mut self, kind: RegionKind) -> Option<RegionId> {
        let id = self.free.pop()?;
        self.clock += 1;
        self.lower[id as usize] = LowerEntry {
            kind,
            epoch: self.clock,
            watermark: 0,
        };
        self.mark(id);
        Some(id)
    }

    /// Releases a region back to the free stack. `watermark` is the
    /// final allocation watermark of the life that just ended.
    ///
    /// Releasing a region whose lower entry is already `Free` is a typed
    /// error: it would push a duplicate onto the free stack and stamp a
    /// bogus epoch, corrupting the exact-reconstruction property recovery
    /// relies on. (This was a `debug_assert_ne!` before — silent in
    /// release builds.)
    pub fn release(&mut self, id: RegionId, watermark: u32) -> Result<(), HeapError> {
        if self.lower[id as usize].kind == RegionKind::Free {
            return Err(HeapError::DoubleRelease(id));
        }
        self.clock += 1;
        self.lower[id as usize] = LowerEntry {
            kind: RegionKind::Free,
            epoch: self.clock,
            watermark,
        };
        self.mark(id);
        self.free.push(id);
        Ok(())
    }

    /// Records a role change that does not pass through the free stack
    /// (e.g. survivor→old reclassification, eden→survivor retention).
    pub fn reclassify(&mut self, id: RegionId, kind: RegionKind) {
        self.clock += 1;
        let e = &mut self.lower[id as usize];
        e.kind = kind;
        e.epoch = self.clock;
        self.mark(id);
    }

    /// Regions dirtied since the last drain, in first-dirtied order.
    pub fn dirty_regions(&self) -> &[RegionId] {
        &self.dirty
    }

    /// Journals every dirty entry at time `now`: each drained region's
    /// shadow history advances and its dirty flag clears. Returns the
    /// drained regions (the caller charges one lower-table line write +
    /// metadata fence per region).
    pub fn drain_dirty(&mut self, now: u64) -> Vec<RegionId> {
        let drained = std::mem::take(&mut self.dirty);
        for &id in &drained {
            self.dirty_flag[id as usize] = false;
            let s = &mut self.shadow[id as usize];
            s.prev = s.last;
            s.last = (now, self.lower[id as usize]);
        }
        drained
    }

    /// The lower table the medium would hold after a crash at `at`: each
    /// region's newest journaled snapshot durable at `at`. Entries
    /// dirtied but never drained fall back to older snapshots — the
    /// partially-durable state recovery must reconcile.
    pub fn durable_view(&self, at: u64) -> Vec<LowerEntry> {
        self.shadow.iter().map(|s| s.durable_at(at)).collect()
    }

    /// Regions whose volatile lower entry diverges from `view` (the
    /// durable state). Recovery re-journals exactly these.
    ///
    /// A view of the wrong length is a typed error: `zip` would silently
    /// truncate the comparison and recovery would mis-classify the tail
    /// regions. (This was a `debug_assert_eq!` before — silent in
    /// release builds.)
    pub fn diverged(&self, view: &[LowerEntry]) -> Result<Vec<RegionId>, HeapError> {
        if view.len() != self.lower.len() {
            return Err(HeapError::ViewLenMismatch {
                expected: self.lower.len(),
                found: view.len(),
            });
        }
        Ok(self
            .lower
            .iter()
            .zip(view)
            .enumerate()
            .filter(|(_, (cur, dur))| cur != dur)
            .map(|(i, _)| i as RegionId)
            .collect())
    }

    /// Marks a region dirty without changing its entry — reconciliation
    /// re-journals entries the crash proved non-durable.
    pub fn mark_dirty(&mut self, id: RegionId) {
        self.mark(id);
    }

    /// Rebuilds the upper free-stack from the lower table: free regions
    /// sorted by `(epoch ascending, id descending)`. Replaces the stack
    /// and returns `(previous, rebuilt)` so callers can assert the
    /// reconstruction is exact.
    pub fn rebuild_free(&mut self) -> (Vec<RegionId>, Vec<RegionId>) {
        let mut rebuilt: Vec<RegionId> = self
            .lower
            .iter()
            .enumerate()
            .filter(|(_, e)| e.kind == RegionKind::Free)
            .map(|(i, _)| i as RegionId)
            .collect();
        rebuilt.sort_by(|&a, &b| {
            let (ea, eb) = (self.lower[a as usize].epoch, self.lower[b as usize].epoch);
            ea.cmp(&eb).then(b.cmp(&a))
        });
        let previous = std::mem::replace(&mut self.free, rebuilt.clone());
        (previous, rebuilt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_pops_lowest_ids_first() {
        let mut a = RegionAllocator::new(4);
        assert_eq!(a.take(RegionKind::Eden), Some(0));
        assert_eq!(a.take(RegionKind::Old), Some(1));
        assert_eq!(a.free_count(), 2);
        assert_eq!(a.lower(0).kind, RegionKind::Eden);
        assert!(a.lower(0).epoch > 0);
    }

    #[test]
    fn release_pushes_on_top_and_records_watermark() {
        let mut a = RegionAllocator::new(4);
        let r = a.take(RegionKind::Eden).unwrap();
        a.release(r, 512).unwrap();
        assert_eq!(a.take(RegionKind::Eden), Some(r), "LIFO reuse");
        let mut b = RegionAllocator::new(4);
        let r = b.take(RegionKind::Eden).unwrap();
        b.release(r, 512).unwrap();
        assert_eq!(b.lower(r).watermark, 512);
        assert_eq!(b.lower(r).kind, RegionKind::Free);
    }

    #[test]
    fn rebuild_reconstructs_the_stack_exactly() {
        // Drive an arbitrary take/release history and check the rebuilt
        // stack equals the live one at every step.
        let mut a = RegionAllocator::new(8);
        let mut live = Vec::new();
        let script: &[(bool, usize)] = &[
            (true, 0),
            (true, 0),
            (true, 0),
            (false, 1), // release the 2nd taken
            (true, 0),
            (false, 0),
            (false, 0),
            (true, 0),
            (true, 0),
        ];
        for &(take, idx) in script {
            if take {
                live.push(a.take(RegionKind::Old).unwrap());
            } else {
                let r = live.remove(idx);
                a.release(r, 64).unwrap();
            }
            let before = a.free_stack().to_vec();
            let (previous, rebuilt) = a.rebuild_free();
            assert_eq!(previous, before);
            assert_eq!(rebuilt, before, "rebuild must be exact");
        }
    }

    #[test]
    fn durable_view_lags_until_drained() {
        let mut a = RegionAllocator::new(4);
        let r = a.take(RegionKind::Survivor).unwrap();
        // Nothing drained: the durable view still says everything free.
        let v = a.durable_view(1_000);
        assert_eq!(v[r as usize], LowerEntry::INITIAL);
        assert_eq!(a.diverged(&v).unwrap(), vec![r]);

        assert_eq!(a.drain_dirty(500), vec![r]);
        assert!(a.dirty_regions().is_empty());
        let v = a.durable_view(1_000);
        assert_eq!(v[r as usize].kind, RegionKind::Survivor);
        assert!(a.diverged(&v).unwrap().is_empty());
        // A crash before the fence sees the previous snapshot.
        let v = a.durable_view(499);
        assert_eq!(v[r as usize], LowerEntry::INITIAL);
    }

    #[test]
    fn reconciliation_restores_exactness_after_a_partial_crash() {
        let mut a = RegionAllocator::new(6);
        let e = a.take(RegionKind::Eden).unwrap();
        a.drain_dirty(100);
        let s = a.take(RegionKind::Survivor).unwrap();
        a.release(e, 256).unwrap();
        // Crash at 150: the survivor take and the eden release were never
        // journaled — partially-durable metadata.
        let view = a.durable_view(150);
        let diverged = a.diverged(&view).unwrap();
        assert_eq!(diverged, vec![e, s]);
        // Reconcile: re-journal the divergent volatile truth, then rebuild.
        let before = a.free_stack().to_vec();
        for &r in &diverged {
            a.mark_dirty(r);
        }
        a.drain_dirty(200);
        let (previous, rebuilt) = a.rebuild_free();
        assert_eq!(previous, before);
        assert_eq!(rebuilt, before);
        assert!(a.diverged(&a.durable_view(250)).unwrap().is_empty());
    }

    #[test]
    fn reclassify_updates_kind_without_freeing() {
        let mut a = RegionAllocator::new(4);
        let s = a.take(RegionKind::Survivor).unwrap();
        let free_before = a.free_count();
        a.reclassify(s, RegionKind::Old);
        assert_eq!(a.lower(s).kind, RegionKind::Old);
        assert_eq!(a.free_count(), free_before);
        assert!(a.dirty_regions().contains(&s));
    }
}
