//! Heap addresses.
//!
//! A heap address is a 64-bit value encoding a region index and a byte
//! offset within that region. Region indices start at 1 so that the all-
//! zero address is never valid — it serves as the null reference. The
//! region size (and therefore the offset width) is fixed per heap and
//! passed in by callers; it is always a power of two.

use std::fmt;

/// A heap address: `(region_index + 1) << region_shift | offset`.
///
/// `Addr::NULL` (zero) is the null reference.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Addr(pub u64);

impl Addr {
    /// The null reference.
    pub const NULL: Addr = Addr(0);

    /// Builds an address from a region index and an in-region offset.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `offset` does not fit in the region.
    pub fn from_parts(region: u32, offset: u32, region_shift: u32) -> Addr {
        debug_assert!((offset as u64) < (1 << region_shift));
        Addr(((region as u64 + 1) << region_shift) | offset as u64)
    }

    /// Whether this is the null reference.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// The region index this address points into.
    #[inline]
    pub fn region(self, region_shift: u32) -> u32 {
        debug_assert!(!self.is_null());
        ((self.0 >> region_shift) - 1) as u32
    }

    /// The byte offset within the region.
    #[inline]
    pub fn offset(self, region_shift: u32) -> u32 {
        (self.0 & ((1u64 << region_shift) - 1)) as u32
    }

    /// The address `bytes` past this one (stays within the same region in
    /// valid usage).
    #[inline]
    pub fn offset_by(self, bytes: u32) -> Addr {
        Addr(self.0 + bytes as u64)
    }

    /// The raw 64-bit representation.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "Addr(null)")
        } else {
            write!(f, "Addr({:#x})", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHIFT: u32 = 20;

    #[test]
    fn roundtrip_region_and_offset() {
        let a = Addr::from_parts(7, 0x1234, SHIFT);
        assert_eq!(a.region(SHIFT), 7);
        assert_eq!(a.offset(SHIFT), 0x1234);
        assert!(!a.is_null());
    }

    #[test]
    fn region_zero_offset_zero_is_not_null() {
        let a = Addr::from_parts(0, 0, SHIFT);
        assert!(!a.is_null());
        assert_eq!(a.region(SHIFT), 0);
        assert_eq!(a.offset(SHIFT), 0);
    }

    #[test]
    fn add_advances_offset() {
        let a = Addr::from_parts(3, 100, SHIFT);
        let b = a.offset_by(28);
        assert_eq!(b.region(SHIFT), 3);
        assert_eq!(b.offset(SHIFT), 128);
    }

    #[test]
    fn null_formats_clearly() {
        assert_eq!(format!("{:?}", Addr::NULL), "Addr(null)");
    }
}
