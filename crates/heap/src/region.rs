//! Fixed-size heap regions.
//!
//! G1 manages its heap in equal-sized regions; so do we. A region carries
//! real backing memory (objects are actually stored and copied), a bump
//! pointer, the device it is placed on, and the bookkeeping the NVM-aware
//! optimizations need: the write-cache mapping (paper §3.2) and the
//! asynchronous-flush tracking state (paper §4.2, Fig. 4).

use crate::addr::Addr;
use crate::remset::RememberedSet;
use nvmgc_memsim::DeviceId;

/// Index of a region within the heap's region table.
pub type RegionId = u32;

/// The role a region currently plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// Unused, available for allocation.
    Free,
    /// Young-generation allocation region (mutator TLABs point here).
    Eden,
    /// Young-generation to-space: survivors of the current/last GC.
    Survivor,
    /// Old generation (promoted objects).
    Old,
    /// A DRAM write-cache region (not part of the Java heap proper).
    Cache,
    /// A region holding a single humongous object (size > region/2).
    /// Humongous objects are never copied; they are reclaimed whole by
    /// mixed/full collections when marking finds them dead.
    Humongous,
}

impl RegionKind {
    /// Whether the region belongs to the young generation.
    pub fn is_young(self) -> bool {
        matches!(self, RegionKind::Eden | RegionKind::Survivor)
    }
}

/// One fixed-size region with real backing storage.
#[derive(Debug, Clone)]
pub struct Region {
    id: RegionId,
    kind: RegionKind,
    device: DeviceId,
    data: Box<[u8]>,
    top: u32,
    /// Remembered set: old-space slots that point into this region.
    pub remset: RememberedSet,
    /// Candidate last reference for async-flush tracking (Fig. 4).
    pub last_ref: Addr,
    /// Set when a reference targeting this region was stolen; stolen
    /// regions opt out of asynchronous flushing (paper §4.2).
    pub stolen: bool,
    /// Whether this (cache) region has been written back to NVM.
    pub flushed: bool,
    /// For cache regions: the NVM region this one is mapped to.
    pub mapped_to: Option<RegionId>,
    /// Whether the region is part of the current collection set.
    pub in_cset: bool,
    /// Unprocessed work-stack entries (reference slots) residing in this
    /// region — the async-flush readiness tracker (paper §4.2, Fig. 4).
    pub pending_slots: u32,
    /// PS: local allocation buffers currently carved from this region and
    /// still open for copying; the region must not flush while nonzero.
    pub open_labs: u32,
}

impl Region {
    /// Creates a free region of `size` bytes on `device`.
    pub fn new(id: RegionId, size: u32, device: DeviceId) -> Region {
        Region {
            id,
            kind: RegionKind::Free,
            device,
            data: vec![0u8; size as usize].into_boxed_slice(),
            top: 0,
            remset: RememberedSet::new(),
            last_ref: Addr::NULL,
            stolen: false,
            flushed: false,
            mapped_to: None,
            in_cset: false,
            pending_slots: 0,
            open_labs: 0,
        }
    }

    /// The region's id.
    pub fn id(&self) -> RegionId {
        self.id
    }

    /// The region's current role.
    pub fn kind(&self) -> RegionKind {
        self.kind
    }

    /// The device the region is placed on.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// Re-places the region on a different device (used when recycling a
    /// free region for a differently-placed space).
    pub fn set_device(&mut self, device: DeviceId) {
        debug_assert_eq!(self.kind, RegionKind::Free);
        self.device = device;
    }

    /// Changes the region's role.
    pub fn set_kind(&mut self, kind: RegionKind) {
        self.kind = kind;
    }

    /// The region capacity in bytes.
    pub fn capacity(&self) -> u32 {
        self.data.len() as u32
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u32 {
        self.top
    }

    /// Bytes still free.
    pub fn free_bytes(&self) -> u32 {
        self.capacity() - self.top
    }

    /// Whether no further objects fit (less than `min` bytes free).
    pub fn is_full_for(&self, min: u32) -> bool {
        self.free_bytes() < min
    }

    /// Bump-allocates `size` bytes, returning the offset, or `None` if the
    /// region is too full.
    pub fn bump(&mut self, size: u32) -> Option<u32> {
        debug_assert_eq!(size % 8, 0);
        if self.free_bytes() < size {
            return None;
        }
        let off = self.top;
        self.top += size;
        Some(off)
    }

    /// Resets the region to an empty state with a new role.
    pub fn reset(&mut self, kind: RegionKind) {
        self.kind = kind;
        self.top = 0;
        self.remset.clear();
        self.last_ref = Addr::NULL;
        self.stolen = false;
        self.flushed = false;
        self.mapped_to = None;
        self.in_cset = false;
        self.pending_slots = 0;
        self.open_labs = 0;
    }

    /// Reads the 64-bit word at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the offset is out of bounds or unaligned.
    #[inline]
    pub fn read_u64(&self, offset: u32) -> u64 {
        let o = offset as usize;
        u64::from_le_bytes(self.data[o..o + 8].try_into().expect("aligned read"))
    }

    /// Writes the 64-bit word at `offset`.
    #[inline]
    pub fn write_u64(&mut self, offset: u32, value: u64) {
        let o = offset as usize;
        self.data[o..o + 8].copy_from_slice(&value.to_le_bytes());
    }

    /// Borrows `len` raw bytes starting at `offset`.
    pub fn bytes(&self, offset: u32, len: u32) -> &[u8] {
        &self.data[offset as usize..(offset + len) as usize]
    }

    /// Mutably borrows `len` raw bytes starting at `offset`.
    pub fn bytes_mut(&mut self, offset: u32, len: u32) -> &mut [u8] {
        &mut self.data[offset as usize..(offset + len) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_allocates_until_full() {
        let mut r = Region::new(0, 64, DeviceId::Nvm);
        assert_eq!(r.bump(24), Some(0));
        assert_eq!(r.bump(24), Some(24));
        assert_eq!(r.bump(24), None, "only 16 bytes left");
        assert_eq!(r.bump(16), Some(48));
        assert_eq!(r.free_bytes(), 0);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut r = Region::new(0, 64, DeviceId::Dram);
        r.write_u64(8, 0xFEED_BEEF_1234_5678);
        assert_eq!(r.read_u64(8), 0xFEED_BEEF_1234_5678);
        assert_eq!(r.read_u64(0), 0, "untouched memory is zero");
    }

    #[test]
    fn reset_clears_state() {
        let mut r = Region::new(0, 64, DeviceId::Nvm);
        r.bump(32);
        r.stolen = true;
        r.flushed = true;
        r.mapped_to = Some(9);
        r.last_ref = Addr(0x40);
        r.in_cset = true;
        r.pending_slots = 3;
        r.remset.insert(Addr(0x99));
        r.reset(RegionKind::Eden);
        assert_eq!(r.kind(), RegionKind::Eden);
        assert_eq!(r.used(), 0);
        assert!(!r.stolen && !r.flushed);
        assert_eq!(r.mapped_to, None);
        assert!(r.last_ref.is_null());
        assert!(!r.in_cset);
        assert_eq!(r.pending_slots, 0);
        assert!(r.remset.is_empty());
    }

    #[test]
    fn kind_is_young() {
        assert!(RegionKind::Eden.is_young());
        assert!(RegionKind::Survivor.is_young());
        assert!(!RegionKind::Old.is_young());
        assert!(!RegionKind::Cache.is_young());
        assert!(!RegionKind::Free.is_young());
    }

    #[test]
    fn bytes_slices_are_consistent_with_words() {
        let mut r = Region::new(0, 64, DeviceId::Dram);
        r.bytes_mut(16, 8).copy_from_slice(&7u64.to_le_bytes());
        assert_eq!(r.read_u64(16), 7);
        assert_eq!(r.bytes(16, 8), &7u64.to_le_bytes());
    }
}
