//! Object header encoding.
//!
//! Each object starts with one 64-bit header word. In its normal state the
//! header packs the class id and the GC age. During collection a copied
//! object's old header is overwritten with a *forwarding pointer*: the new
//! address tagged with the low bit (heap addresses are 8-byte aligned, so
//! the low bits are free). This mirrors HotSpot's forwarding scheme, which
//! the paper's header map optimization exists to keep off NVM.

use crate::addr::Addr;
use crate::HeapError;

/// Size of the object header in bytes.
pub const HEADER_BYTES: u32 = 8;

const FORWARD_TAG: u64 = 1;

/// A decoded object header word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header(pub u64);

impl Header {
    /// Builds a normal (non-forwarded) header.
    pub fn new(class_id: u32, age: u8) -> Header {
        Header(((class_id as u64) << 32) | ((age as u64) << 8))
    }

    /// Builds a forwarding header pointing at `new_addr`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `new_addr` is null or unaligned.
    pub fn forwarding(new_addr: Addr) -> Header {
        debug_assert!(!new_addr.is_null());
        debug_assert_eq!(new_addr.raw() & 7, 0, "addresses are 8-byte aligned");
        Header(new_addr.raw() | FORWARD_TAG)
    }

    /// Whether the header is a forwarding pointer.
    #[inline]
    pub fn is_forwarded(self) -> bool {
        self.0 & FORWARD_TAG != 0
    }

    /// The forwarding destination, if forwarded.
    #[inline]
    pub fn forwardee(self) -> Option<Addr> {
        if self.is_forwarded() {
            Some(Addr(self.0 & !FORWARD_TAG))
        } else {
            None
        }
    }

    /// The class id of a non-forwarded header.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when called on a forwarding header. Hot
    /// paths that have already checked [`Header::is_forwarded`] use
    /// this; anything handed a header of unknown state (crash-recovery
    /// scans, verification walks) must use [`Header::try_class_id`],
    /// which rejects forwarded headers in release builds too.
    #[inline]
    pub fn class_id(self) -> u32 {
        debug_assert!(!self.is_forwarded());
        (self.0 >> 32) as u32
    }

    /// Checked variant of [`Header::class_id`]: a forwarding header is a
    /// typed error instead of garbage class bits.
    #[inline]
    pub fn try_class_id(self) -> Result<u32, HeapError> {
        if self.is_forwarded() {
            return Err(HeapError::ForwardedHeader { raw: self.0 });
        }
        Ok((self.0 >> 32) as u32)
    }

    /// The GC age of a non-forwarded header.
    #[inline]
    pub fn age(self) -> u8 {
        debug_assert!(!self.is_forwarded());
        (self.0 >> 8) as u8
    }

    /// Checked variant of [`Header::age`].
    #[inline]
    pub fn try_age(self) -> Result<u8, HeapError> {
        if self.is_forwarded() {
            return Err(HeapError::ForwardedHeader { raw: self.0 });
        }
        Ok((self.0 >> 8) as u8)
    }

    /// A copy of this header with the age incremented (saturating at 255).
    pub fn aged(self) -> Header {
        debug_assert!(!self.is_forwarded());
        Header::new(self.class_id(), self.age().saturating_add(1))
    }

    /// Checked variant of [`Header::aged`]: aging a forwarding header
    /// would manufacture a bogus class id, so it is a typed error.
    pub fn try_aged(self) -> Result<Header, HeapError> {
        let class = self.try_class_id()?;
        Ok(Header::new(class, self.try_age()?.saturating_add(1)))
    }

    /// Checked forwarding install: the forwarding header replacing this
    /// one. Forwarding an already-forwarded header would silently drop
    /// the original forwardee (the install paths used to guard this with
    /// a `debug_assert!` only — release builds overwrote the word), so a
    /// forwarded receiver is a typed error.
    pub fn forward_to(self, new_addr: Addr) -> Result<Header, HeapError> {
        if self.is_forwarded() {
            return Err(HeapError::AlreadyForwarded { raw: self.0 });
        }
        Ok(Header::forwarding(new_addr))
    }

    /// The raw header word.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_header_roundtrips_class_and_age() {
        let h = Header::new(0xDEAD, 7);
        assert!(!h.is_forwarded());
        assert_eq!(h.class_id(), 0xDEAD);
        assert_eq!(h.age(), 7);
        assert_eq!(h.forwardee(), None);
    }

    #[test]
    fn forwarding_header_roundtrips_address() {
        let a = Addr(0x10_0040);
        let h = Header::forwarding(a);
        assert!(h.is_forwarded());
        assert_eq!(h.forwardee(), Some(a));
    }

    #[test]
    fn aged_increments_and_saturates() {
        let h = Header::new(3, 0).aged();
        assert_eq!(h.age(), 1);
        assert_eq!(h.class_id(), 3);
        let old = Header::new(3, 255).aged();
        assert_eq!(old.age(), 255);
    }

    #[test]
    fn checked_accessors_reject_forwarded_headers() {
        // Pinned regression: the unchecked accessors only debug_assert,
        // so in release builds a forwarded header silently decoded to
        // garbage class/age bits. The try_* variants are typed errors.
        let fwd = Header::forwarding(Addr(0x10_0040));
        let err = HeapError::ForwardedHeader { raw: fwd.raw() };
        assert_eq!(fwd.try_class_id(), Err(err.clone()));
        assert_eq!(fwd.try_age(), Err(err.clone()));
        assert_eq!(fwd.try_aged(), Err(err));
        let normal = Header::new(7, 3);
        assert_eq!(normal.try_class_id(), Ok(7));
        assert_eq!(normal.try_age(), Ok(3));
        assert_eq!(normal.try_aged(), Ok(Header::new(7, 4)));
    }

    #[test]
    fn forward_to_rejects_already_forwarded_headers() {
        // Pinned regression: installing a forwarding pointer over a
        // header that is already a forwarding pointer used to be a
        // debug_assert!-only guard — release builds silently overwrote
        // the word, losing the original forwardee. It is now a typed
        // error the collector surfaces as an oracle violation.
        let fwd = Header::forwarding(Addr(0x10_0040));
        assert_eq!(
            fwd.forward_to(Addr(0x10_0080)),
            Err(HeapError::AlreadyForwarded { raw: fwd.raw() })
        );
        let normal = Header::new(7, 3);
        assert_eq!(
            normal.forward_to(Addr(0x10_0080)),
            Ok(Header::forwarding(Addr(0x10_0080)))
        );
    }

    #[test]
    fn raw_roundtrip() {
        let h = Header::new(42, 9);
        assert_eq!(Header(h.raw()), h);
    }
}
