//! The heap: region table, spaces, and object-level operations.
//!
//! The heap owns all regions (young, old, free, and auxiliary DRAM cache
//! regions used by the write cache), the class table, and the raw object
//! operations the collectors and mutators build on. It deliberately knows
//! nothing about timing: callers in `nvmgc-core` charge every operation to
//! the memory model.

use crate::addr::Addr;
use crate::alloc::RegionAllocator;
use crate::cardtable::CardTable;
use crate::class::{ClassId, ClassTable};
use crate::object::{Header, HEADER_BYTES};
use crate::region::{Region, RegionId, RegionKind};
use crate::HeapError;
use nvmgc_memsim::DeviceId;

/// Where heap spaces are placed among the simulated devices.
#[derive(Debug, Clone, Copy)]
pub struct DevicePlacement {
    /// Default device for the Java heap (old space and, unless overridden,
    /// young space).
    pub heap: DeviceId,
    /// Optional override for young-generation regions (the paper's
    /// "young-gen-dram" comparison point places only the young space on
    /// DRAM).
    pub young: Option<DeviceId>,
}

impl DevicePlacement {
    /// Everything on NVM (the paper's main evaluated setting).
    pub fn all_nvm() -> Self {
        DevicePlacement {
            heap: DeviceId::Nvm,
            young: None,
        }
    }

    /// Everything on DRAM (the "vanilla-dram" baseline).
    pub fn all_dram() -> Self {
        DevicePlacement {
            heap: DeviceId::Dram,
            young: None,
        }
    }

    /// Old space on NVM, young space on DRAM ("young-gen-dram").
    pub fn young_dram() -> Self {
        DevicePlacement {
            heap: DeviceId::Nvm,
            young: Some(DeviceId::Dram),
        }
    }

    /// The device young regions are placed on.
    pub fn young_device(&self) -> DeviceId {
        self.young.unwrap_or(self.heap)
    }
}

/// Static heap configuration.
#[derive(Debug, Clone)]
pub struct HeapConfig {
    /// Region size in bytes; must be a power of two.
    pub region_size: u32,
    /// Number of Java-heap regions (young + old capacity).
    pub heap_regions: u32,
    /// Maximum regions the young generation may occupy.
    pub young_regions: u32,
    /// Space placement policy.
    pub placement: DevicePlacement,
    /// Use a card table instead of precise remembered sets (the stock
    /// Parallel Scavenge design; see `cardtable`).
    pub card_table: bool,
}

impl Default for HeapConfig {
    fn default() -> Self {
        HeapConfig {
            region_size: 256 << 10,
            heap_regions: 256, // 64 MiB heap
            young_regions: 64, // 16 MiB young space
            placement: DevicePlacement::all_nvm(),
            card_table: false,
        }
    }
}

impl HeapConfig {
    /// log2 of the region size.
    pub fn region_shift(&self) -> u32 {
        debug_assert!(self.region_size.is_power_of_two());
        self.region_size.trailing_zeros()
    }
}

/// The managed heap.
#[derive(Debug, Clone)]
pub struct Heap {
    cfg: HeapConfig,
    shift: u32,
    classes: ClassTable,
    regions: Vec<Region>,
    alloc: RegionAllocator,
    free_aux: Vec<RegionId>,
    eden: Vec<RegionId>,
    survivor: Vec<RegionId>,
    old: Vec<RegionId>,
    humongous: Vec<RegionId>,
    card_table: Option<CardTable>,
}

impl Heap {
    /// Creates a heap with all Java-heap regions initially free.
    ///
    /// # Panics
    ///
    /// Panics if the region size is not a power of two.
    pub fn new(cfg: HeapConfig, classes: ClassTable) -> Heap {
        assert!(
            cfg.region_size.is_power_of_two(),
            "region size must be a power of two"
        );
        let shift = cfg.region_shift();
        let card_table = cfg
            .card_table
            .then(|| CardTable::new(cfg.heap_regions, shift));
        let regions: Vec<Region> = (0..cfg.heap_regions)
            .map(|i| Region::new(i, cfg.region_size, cfg.placement.heap))
            .collect();
        // Two-level allocator: its upper free-stack pops lowest ids
        // first for determinism, and its lower table is the journaled
        // persistent truth about every region.
        let alloc = RegionAllocator::new(cfg.heap_regions);
        Heap {
            cfg,
            shift,
            classes,
            regions,
            alloc,
            free_aux: Vec::new(),
            eden: Vec::new(),
            survivor: Vec::new(),
            old: Vec::new(),
            humongous: Vec::new(),
            card_table,
        }
    }

    /// The heap configuration.
    pub fn config(&self) -> &HeapConfig {
        &self.cfg
    }

    /// The class table.
    pub fn classes(&self) -> &ClassTable {
        &self.classes
    }

    /// log2 of the region size (for address decoding).
    pub fn shift(&self) -> u32 {
        self.shift
    }

    // ----- region management -------------------------------------------

    /// Borrows a region.
    #[inline]
    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[id as usize]
    }

    /// Mutably borrows a region.
    #[inline]
    pub fn region_mut(&mut self, id: RegionId) -> &mut Region {
        &mut self.regions[id as usize]
    }

    /// Mutably borrows two distinct regions at once (copy source/target).
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn two_regions_mut(&mut self, a: RegionId, b: RegionId) -> (&mut Region, &mut Region) {
        assert_ne!(a, b, "cannot borrow the same region twice");
        let (a, b) = (a as usize, b as usize);
        if a < b {
            let (lo, hi) = self.regions.split_at_mut(b);
            (&mut lo[a], &mut hi[0])
        } else {
            let (lo, hi) = self.regions.split_at_mut(a);
            (&mut hi[0], &mut lo[b])
        }
    }

    /// The ids of the current eden regions.
    pub fn eden(&self) -> &[RegionId] {
        &self.eden
    }

    /// The ids of the current survivor regions.
    pub fn survivor(&self) -> &[RegionId] {
        &self.survivor
    }

    /// The ids of the current old regions.
    pub fn old(&self) -> &[RegionId] {
        &self.old
    }

    /// Number of free Java-heap regions.
    pub fn free_count(&self) -> usize {
        self.alloc.free_count()
    }

    /// The two-level region allocator (journal inspection, recovery).
    pub fn allocator(&self) -> &RegionAllocator {
        &self.alloc
    }

    /// The region allocator, mutable (journal drains, recovery rebuild).
    pub fn allocator_mut(&mut self) -> &mut RegionAllocator {
        &mut self.alloc
    }

    /// Total regions currently backed (Java heap + auxiliary).
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Number of young regions in use (eden + survivor).
    pub fn young_count(&self) -> usize {
        self.eden.len() + self.survivor.len()
    }

    /// Whether the young generation has reached its region budget.
    pub fn young_full(&self) -> bool {
        self.young_count() >= self.cfg.young_regions as usize
    }

    /// Takes a free region for the given role, placing it per policy.
    pub fn take_region(&mut self, kind: RegionKind) -> Result<RegionId, HeapError> {
        if matches!(
            kind,
            RegionKind::Free | RegionKind::Cache | RegionKind::Humongous
        ) {
            return Err(HeapError::BadTakeKind(kind));
        }
        let id = self.alloc.take(kind).ok_or(HeapError::OutOfRegions)?;
        let device = if kind.is_young() {
            self.cfg.placement.young_device()
        } else {
            self.cfg.placement.heap
        };
        let r = &mut self.regions[id as usize];
        r.set_device(device);
        r.reset(kind);
        match kind {
            RegionKind::Eden => self.eden.push(id),
            RegionKind::Survivor => self.survivor.push(id),
            RegionKind::Old => self.old.push(id),
            // Rejected above; repeated here so the match stays total.
            RegionKind::Free | RegionKind::Cache | RegionKind::Humongous => {
                return Err(HeapError::BadTakeKind(kind))
            }
        }
        Ok(id)
    }

    /// Allocates a humongous object: a whole region dedicated to one
    /// object of `class` (intended for objects larger than half a
    /// region). Humongous regions live outside the young generation and
    /// are reclaimed whole by mixed/full collections.
    pub fn alloc_humongous(&mut self, class: ClassId) -> Result<Addr, HeapError> {
        let size = self.classes.get(class).size();
        if size > self.cfg.region_size {
            return Err(HeapError::ObjectTooLarge {
                size: size as usize,
            });
        }
        let id = self
            .alloc
            .take(RegionKind::Humongous)
            .ok_or(HeapError::OutOfRegions)?;
        let device = self.cfg.placement.heap;
        let r = &mut self.regions[id as usize];
        r.set_device(device);
        r.reset(RegionKind::Humongous);
        self.humongous.push(id);
        // invariant: the region was just reset, and `size <= region_size`
        // was checked above, so a fresh bump allocation cannot fail.
        let obj = self
            .alloc_object(id, class)
            .expect("fresh region fits the object");
        Ok(obj)
    }

    /// The ids of the current humongous regions.
    pub fn humongous(&self) -> &[RegionId] {
        &self.humongous
    }

    /// Returns a region to the free list.
    ///
    /// Releasing an already-free region is a typed error: before PR 8 it
    /// silently returned, so a double-release in release builds
    /// corrupted free-count accounting with no signal.
    pub fn release_region(&mut self, id: RegionId) -> Result<(), HeapError> {
        let kind = self.regions[id as usize].kind();
        match kind {
            RegionKind::Eden => self.eden.retain(|&r| r != id),
            RegionKind::Survivor => self.survivor.retain(|&r| r != id),
            RegionKind::Old => self.old.retain(|&r| r != id),
            RegionKind::Cache => {
                self.regions[id as usize].reset(RegionKind::Free);
                self.free_aux.push(id);
                return Ok(());
            }
            RegionKind::Humongous => self.humongous.retain(|&r| r != id),
            RegionKind::Free => return Err(HeapError::DoubleRelease(id)),
        }
        let watermark = self.regions[id as usize].used();
        self.regions[id as usize].reset(RegionKind::Free);
        self.alloc.release(id, watermark)
    }

    /// Allocates an auxiliary (non-Java-heap) region on `device`, used for
    /// DRAM write-cache regions. Reuses previously released aux regions.
    pub fn alloc_aux_region(&mut self, device: DeviceId) -> RegionId {
        if let Some(id) = self.free_aux.pop() {
            let r = &mut self.regions[id as usize];
            r.set_device(device);
            r.reset(RegionKind::Cache);
            return id;
        }
        let id = self.regions.len() as RegionId;
        let mut r = Region::new(id, self.cfg.region_size, device);
        r.set_kind(RegionKind::Cache);
        self.regions.push(r);
        id
    }

    /// Promotes all current survivor regions into the survivor role for
    /// the next cycle — i.e. after GC, newly filled survivor regions stay
    /// listed; eden regions must have been released by the collector.
    ///
    /// A non-survivor region on the survivor list is a typed error
    /// (release-silent `debug_assert!` before PR 8).
    pub fn survivors_to_young(&mut self) -> Result<(), HeapError> {
        // Survivor regions remain survivors until the next GC collects
        // them; nothing to do beyond the invariant check.
        for &r in &self.survivor {
            let found = self.regions[r as usize].kind();
            if found != RegionKind::Survivor {
                return Err(HeapError::KindMismatch {
                    region: r,
                    expected: RegionKind::Survivor,
                    found,
                });
            }
        }
        Ok(())
    }

    /// Moves a region from the eden list to the survivor list after its
    /// kind was changed (evacuation-failure retention).
    pub fn eden_to_survivor(&mut self, id: RegionId) -> Result<(), HeapError> {
        let found = self.regions[id as usize].kind();
        if found != RegionKind::Survivor {
            return Err(HeapError::KindMismatch {
                region: id,
                expected: RegionKind::Survivor,
                found,
            });
        }
        self.alloc.reclassify(id, RegionKind::Survivor);
        self.eden.retain(|&r| r != id);
        if !self.survivor.contains(&id) {
            self.survivor.push(id);
        }
        Ok(())
    }

    /// Reclassifies a survivor region as old (used when the collector
    /// decides a whole region's population is tenured).
    pub fn survivor_to_old(&mut self, id: RegionId) -> Result<(), HeapError> {
        let found = self.regions[id as usize].kind();
        if found != RegionKind::Survivor {
            return Err(HeapError::KindMismatch {
                region: id,
                expected: RegionKind::Survivor,
                found,
            });
        }
        self.survivor.retain(|&r| r != id);
        self.regions[id as usize].set_kind(RegionKind::Old);
        self.alloc.reclassify(id, RegionKind::Old);
        self.old.push(id);
        Ok(())
    }

    // ----- addressing ---------------------------------------------------

    /// Builds an address from a region and offset.
    #[inline]
    pub fn addr_of(&self, region: RegionId, offset: u32) -> Addr {
        Addr::from_parts(region, offset, self.shift)
    }

    /// The region an address points into.
    ///
    /// Returns an error for null or out-of-range addresses.
    #[inline]
    pub fn region_of(&self, addr: Addr) -> Result<RegionId, HeapError> {
        // Guard both ends: addresses below the first region (raw values
        // that are not heap pointers, e.g. payload bytes misread as
        // references) and past the region table.
        if addr.is_null() || addr.raw() < (1u64 << self.shift) {
            return Err(HeapError::BadAddress(addr));
        }
        let r = addr.region(self.shift);
        if (r as usize) < self.regions.len() {
            Ok(r)
        } else {
            Err(HeapError::BadAddress(addr))
        }
    }

    /// The device backing an address.
    #[inline]
    pub fn device_of(&self, addr: Addr) -> DeviceId {
        let r = addr.region(self.shift);
        self.regions[r as usize].device()
    }

    /// Whether `addr` lies in a young (eden/survivor) region.
    #[inline]
    pub fn is_young(&self, addr: Addr) -> bool {
        !addr.is_null() && self.region(addr.region(self.shift)).kind().is_young()
    }

    // ----- object operations ---------------------------------------------

    /// Allocates an object of `class` in `region`, zeroing its fields.
    ///
    /// Returns `None` when the region is too full.
    pub fn alloc_object(&mut self, region: RegionId, class: ClassId) -> Option<Addr> {
        let size = self.classes.get(class).size();
        let shift = self.shift;
        let r = &mut self.regions[region as usize];
        let off = r.bump(size)?;
        r.bytes_mut(off, size).fill(0);
        r.write_u64(off, Header::new(class, 0).raw());
        Some(Addr::from_parts(region, off, shift))
    }

    /// Reads an object's header.
    #[inline]
    pub fn header(&self, obj: Addr) -> Header {
        let r = obj.region(self.shift);
        Header(self.regions[r as usize].read_u64(obj.offset(self.shift)))
    }

    /// Overwrites an object's header.
    #[inline]
    pub fn set_header(&mut self, obj: Addr, h: Header) {
        let r = obj.region(self.shift);
        let off = obj.offset(self.shift);
        self.regions[r as usize].write_u64(off, h.raw());
    }

    /// The class of a (non-forwarded) object.
    #[inline]
    pub fn class_of(&self, obj: Addr) -> ClassId {
        self.header(obj).class_id()
    }

    /// Checked variant of [`Heap::class_of`]: a forwarded header is a
    /// typed error instead of garbage class bits.
    #[inline]
    pub fn try_class_of(&self, obj: Addr) -> Result<ClassId, HeapError> {
        self.header(obj).try_class_id()
    }

    /// Total size in bytes of the object at `obj`.
    #[inline]
    pub fn object_size(&self, obj: Addr) -> u32 {
        self.classes.get(self.class_of(obj)).size()
    }

    /// Checked variant of [`Heap::object_size`] for headers that may be
    /// forwarded (e.g. crash-recovery scans over suspect records).
    #[inline]
    pub fn try_object_size(&self, obj: Addr) -> Result<u32, HeapError> {
        Ok(self.classes.get(self.try_class_of(obj)?).size())
    }

    /// The address of reference slot `i` of `obj`.
    #[inline]
    pub fn ref_slot(&self, obj: Addr, i: u32) -> Addr {
        obj.offset_by(HEADER_BYTES + i * 8)
    }

    /// Number of reference slots in `obj`.
    #[inline]
    pub fn num_refs(&self, obj: Addr) -> u32 {
        self.classes.get(self.class_of(obj)).num_refs
    }

    /// Reads the reference stored at `slot`.
    #[inline]
    pub fn read_ref(&self, slot: Addr) -> Addr {
        let r = slot.region(self.shift);
        Addr(self.regions[r as usize].read_u64(slot.offset(self.shift)))
    }

    /// Stores a reference at `slot` (no write barrier; see
    /// [`Heap::write_ref_with_barrier`]).
    #[inline]
    pub fn write_ref(&mut self, slot: Addr, value: Addr) {
        let r = slot.region(self.shift);
        let off = slot.offset(self.shift);
        self.regions[r as usize].write_u64(off, value.raw());
    }

    /// Stores a reference with the G1-style write barrier: a cross-region
    /// reference written into an old-space slot is recorded in the target
    /// region's remembered set. Returns `true` when a remset entry was
    /// added (the caller charges the extra cost).
    ///
    /// References *from* young regions are never recorded — the young
    /// generation is in every collection set, so they are always found by
    /// tracing (this is exactly G1's policy).
    pub fn write_ref_with_barrier(&mut self, slot: Addr, value: Addr) -> bool {
        self.write_ref(slot, value);
        if value.is_null() {
            return false;
        }
        let src_region = slot.region(self.shift);
        let dst_region = value.region(self.shift);
        if src_region == dst_region {
            return false;
        }
        let src_old = matches!(
            self.regions[src_region as usize].kind(),
            RegionKind::Old | RegionKind::Humongous
        );
        let dst_tracked = matches!(
            self.regions[dst_region as usize].kind(),
            RegionKind::Eden | RegionKind::Survivor | RegionKind::Old | RegionKind::Humongous
        );
        if !(src_old && dst_tracked) {
            return false;
        }
        match &mut self.card_table {
            Some(ct) => {
                // Card-table mode: blindly dirty the slot's card (the
                // cheap PS barrier). Only old→young matters for young
                // collection; old→old refs are not tracked, so this mode
                // does not support mixed collections.
                if self.regions[dst_region as usize].kind().is_young() {
                    ct.dirty(slot);
                    true
                } else {
                    false
                }
            }
            None => self.regions[dst_region as usize].remset.insert(slot),
        }
    }

    /// Reads the data word `w` (64-bit index into the payload) of `obj`.
    #[inline]
    pub fn read_data(&self, obj: Addr, w: u32) -> u64 {
        let nrefs = self.num_refs(obj);
        let off = obj.offset(self.shift) + HEADER_BYTES + nrefs * 8 + w * 8;
        self.regions[obj.region(self.shift) as usize].read_u64(off)
    }

    /// Writes the data word `w` of `obj`.
    #[inline]
    pub fn write_data(&mut self, obj: Addr, w: u32, value: u64) {
        let nrefs = self.num_refs(obj);
        let off = obj.offset(self.shift) + HEADER_BYTES + nrefs * 8 + w * 8;
        self.regions[obj.region(self.shift) as usize].write_u64(off, value);
    }

    /// Copies the raw bytes of the object at `from` into `to_region`,
    /// returning the copy's address. The source header is copied verbatim
    /// (the caller ages/forwards as needed).
    ///
    /// Returns `None` when `to_region` is too full.
    pub fn copy_object(&mut self, from: Addr, to_region: RegionId) -> Option<Addr> {
        let size = self.object_size(from);
        let shift = self.shift;
        let from_region = from.region(shift);
        let from_off = from.offset(shift);
        if from_region == to_region {
            // Copying within one region cannot happen: sources are in the
            // collection set, targets are fresh survivor/cache regions.
            unreachable!("copy within a single region");
        }
        let (src, dst) = self.two_regions_mut(from_region, to_region);
        let off = dst.bump(size)?;
        let bytes = src.bytes(from_off, size);
        dst.bytes_mut(off, size).copy_from_slice(bytes);
        Some(Addr::from_parts(to_region, off, shift))
    }

    /// Scrubs every remembered set of entries whose source slot lies in
    /// one of `freed` regions (which are being released or have been
    /// repurposed). G1 performs the same scrubbing during cleanup — a
    /// stale entry into a recycled region would otherwise read arbitrary
    /// bytes as a reference.
    pub fn scrub_remset_sources(&mut self, freed: &nvmgc_memsim::FxHashSet<RegionId>) {
        if freed.is_empty() {
            return;
        }
        let shift = self.shift;
        for region in &mut self.regions {
            if region.remset.is_empty() {
                continue;
            }
            region
                .remset
                .retain(|slot| !freed.contains(&slot.region(shift)));
        }
    }

    /// The card table, when enabled.
    pub fn card_table(&self) -> Option<&CardTable> {
        self.card_table.as_ref()
    }

    /// The card table, mutable (collection-time clearing).
    pub fn card_table_mut(&mut self) -> Option<&mut CardTable> {
        self.card_table.as_mut()
    }

    /// Copies the raw bytes of the object at `from` to `to_region` at a
    /// caller-chosen `offset` (which must lie within already-bumped space,
    /// e.g. a PS local allocation buffer). Returns the copy's address.
    pub fn copy_object_to_offset(&mut self, from: Addr, to_region: RegionId, offset: u32) -> Addr {
        let size = self.object_size(from);
        let shift = self.shift;
        let from_region = from.region(shift);
        let from_off = from.offset(shift);
        debug_assert_ne!(from_region, to_region);
        let (src, dst) = self.two_regions_mut(from_region, to_region);
        debug_assert!(
            offset + size <= dst.used(),
            "offset must be inside bumped space"
        );
        let bytes = src.bytes(from_off, size);
        dst.bytes_mut(offset, size).copy_from_slice(bytes);
        Addr::from_parts(to_region, offset, shift)
    }

    /// Copies the used contents of region `from` into the (empty) region
    /// `to` at identical offsets — the write-back operation of the write
    /// cache. `to`'s bump pointer is advanced to match.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not empty or cannot hold the bytes.
    pub fn blit_region(&mut self, from: RegionId, to: RegionId) {
        let used = self.regions[from as usize].used();
        if used == 0 {
            return;
        }
        let (src, dst) = self.two_regions_mut(from, to);
        assert_eq!(dst.used(), 0, "write-back target must be empty");
        // invariant: regions are uniformly `region_size`, so an empty target
        // (asserted above) always holds `used <= region_size` bytes.
        let off = dst.bump(used).expect("target region large enough");
        debug_assert_eq!(off, 0);
        let bytes = src.bytes(0, used);
        dst.bytes_mut(0, used).copy_from_slice(bytes);
    }

    /// Iterates over the objects in a region in address order, calling
    /// `f(addr, class)`. Only valid for regions fully populated by
    /// allocation (not mid-copy).
    pub fn walk_region<F: FnMut(Addr, ClassId)>(&self, region: RegionId, mut f: F) {
        let r = self.region(region);
        let mut off = 0;
        while off < r.used() {
            let addr = self.addr_of(region, off);
            let h = Header(r.read_u64(off));
            debug_assert!(!h.is_forwarded(), "walking a region mid-collection");
            let class = h.class_id();
            f(addr, class);
            off += self.classes.get(class).size();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_heap() -> Heap {
        let mut classes = ClassTable::new();
        classes.register("pair", 2, 16); // size 8+16+16 = 40
        classes.register("leaf", 0, 8); // size 16
        Heap::new(
            HeapConfig {
                region_size: 1 << 12, // 4 KiB regions
                heap_regions: 8,
                young_regions: 4,
                placement: DevicePlacement::all_nvm(),
                card_table: false,
            },
            classes,
        )
    }

    #[test]
    fn take_and_release_regions() {
        let mut h = test_heap();
        let e = h.take_region(RegionKind::Eden).unwrap();
        assert_eq!(h.eden(), &[e]);
        assert_eq!(h.free_count(), 7);
        h.release_region(e).unwrap();
        assert_eq!(h.eden().len(), 0);
        assert_eq!(h.free_count(), 8);
    }

    #[test]
    fn double_release_is_a_typed_error() {
        // Pinned regression: before PR 8 a second release of the same
        // region silently returned, corrupting free-count accounting in
        // release builds.
        let mut h = test_heap();
        let e = h.take_region(RegionKind::Eden).unwrap();
        h.release_region(e).unwrap();
        assert_eq!(h.release_region(e), Err(HeapError::DoubleRelease(e)));
        assert_eq!(h.free_count(), 8, "failed release must not double-push");
    }

    #[test]
    fn take_region_rejects_unservable_roles() {
        let mut h = test_heap();
        for kind in [RegionKind::Free, RegionKind::Cache, RegionKind::Humongous] {
            assert_eq!(h.take_region(kind), Err(HeapError::BadTakeKind(kind)));
        }
        assert_eq!(h.free_count(), 8, "rejected takes must not consume regions");
    }

    #[test]
    fn kind_transitions_are_typed_errors() {
        let mut h = test_heap();
        let e = h.take_region(RegionKind::Eden).unwrap();
        // eden_to_survivor requires the kind to already be Survivor.
        assert_eq!(
            h.eden_to_survivor(e),
            Err(HeapError::KindMismatch {
                region: e,
                expected: RegionKind::Survivor,
                found: RegionKind::Eden,
            })
        );
        assert_eq!(
            h.survivor_to_old(e),
            Err(HeapError::KindMismatch {
                region: e,
                expected: RegionKind::Survivor,
                found: RegionKind::Eden,
            })
        );
    }

    #[test]
    fn allocator_lower_table_tracks_region_lifecycle() {
        let mut h = test_heap();
        let e = h.take_region(RegionKind::Eden).unwrap();
        assert_eq!(h.allocator().lower(e).kind, RegionKind::Eden);
        h.alloc_object(e, 1).unwrap();
        h.release_region(e).unwrap();
        let entry = h.allocator().lower(e);
        assert_eq!(entry.kind, RegionKind::Free);
        assert_eq!(entry.watermark, 16, "release records the final used bytes");
        let s = h.take_region(RegionKind::Survivor).unwrap();
        h.survivor_to_old(s).unwrap();
        assert_eq!(h.allocator().lower(s).kind, RegionKind::Old);
    }

    #[test]
    fn out_of_regions_is_an_error() {
        let mut h = test_heap();
        for _ in 0..8 {
            h.take_region(RegionKind::Old).unwrap();
        }
        assert_eq!(
            h.take_region(RegionKind::Eden),
            Err(HeapError::OutOfRegions)
        );
    }

    #[test]
    fn young_placement_override() {
        let mut classes = ClassTable::new();
        classes.register("x", 0, 0);
        let mut h = Heap::new(
            HeapConfig {
                region_size: 1 << 12,
                heap_regions: 4,
                young_regions: 2,
                placement: DevicePlacement::young_dram(),
                card_table: false,
            },
            classes,
        );
        let e = h.take_region(RegionKind::Eden).unwrap();
        let o = h.take_region(RegionKind::Old).unwrap();
        assert_eq!(h.region(e).device(), DeviceId::Dram);
        assert_eq!(h.region(o).device(), DeviceId::Nvm);
    }

    #[test]
    fn alloc_object_and_field_access() {
        let mut h = test_heap();
        let e = h.take_region(RegionKind::Eden).unwrap();
        let a = h.alloc_object(e, 0).unwrap();
        let b = h.alloc_object(e, 1).unwrap();
        assert_eq!(h.class_of(a), 0);
        assert_eq!(h.object_size(a), 40);
        assert_eq!(h.num_refs(a), 2);
        // Fields start as null/zero.
        assert!(h.read_ref(h.ref_slot(a, 0)).is_null());
        assert_eq!(h.read_data(a, 0), 0);
        // Link a -> b and store payload.
        h.write_ref(h.ref_slot(a, 0), b);
        h.write_data(a, 1, 0xAB);
        assert_eq!(h.read_ref(h.ref_slot(a, 0)), b);
        assert_eq!(h.read_data(a, 1), 0xAB);
    }

    #[test]
    fn alloc_object_zeroes_recycled_memory() {
        let mut h = test_heap();
        let e = h.take_region(RegionKind::Eden).unwrap();
        let a = h.alloc_object(e, 0).unwrap();
        h.write_data(a, 0, u64::MAX);
        h.release_region(e).unwrap();
        let e2 = h.take_region(RegionKind::Eden).unwrap();
        assert_eq!(e2, e, "LIFO free list reuses the region");
        let a2 = h.alloc_object(e2, 0).unwrap();
        assert_eq!(h.read_data(a2, 0), 0);
    }

    #[test]
    fn write_barrier_records_old_to_young_only() {
        let mut h = test_heap();
        let e = h.take_region(RegionKind::Eden).unwrap();
        let o = h.take_region(RegionKind::Old).unwrap();
        let young_obj = h.alloc_object(e, 1).unwrap();
        let old_obj = h.alloc_object(o, 0).unwrap();
        let young_holder = h.alloc_object(e, 0).unwrap();

        // old -> young: recorded.
        let slot = h.ref_slot(old_obj, 0);
        assert!(h.write_ref_with_barrier(slot, young_obj));
        let yr = young_obj.region(h.shift());
        assert_eq!(h.region(yr).remset.len(), 1);

        // young -> young: not recorded.
        let slot2 = h.ref_slot(young_holder, 0);
        assert!(!h.write_ref_with_barrier(slot2, young_obj));

        // null store: not recorded.
        assert!(!h.write_ref_with_barrier(slot, Addr::NULL));
    }

    #[test]
    fn copy_object_preserves_bytes() {
        let mut h = test_heap();
        let e = h.take_region(RegionKind::Eden).unwrap();
        let s = h.take_region(RegionKind::Survivor).unwrap();
        let a = h.alloc_object(e, 0).unwrap();
        h.write_data(a, 0, 111);
        h.write_data(a, 1, 222);
        let copy = h.copy_object(a, s).unwrap();
        assert_ne!(copy, a);
        assert_eq!(h.read_data(copy, 0), 111);
        assert_eq!(h.read_data(copy, 1), 222);
        assert_eq!(h.class_of(copy), 0);
    }

    #[test]
    fn walk_region_visits_all_objects() {
        let mut h = test_heap();
        let e = h.take_region(RegionKind::Eden).unwrap();
        let mut expect = Vec::new();
        for i in 0..5 {
            expect.push(h.alloc_object(e, (i % 2) as u32).unwrap());
        }
        let mut seen = Vec::new();
        h.walk_region(e, |a, _| seen.push(a));
        assert_eq!(seen, expect);
    }

    #[test]
    fn aux_regions_recycle() {
        let mut h = test_heap();
        let c1 = h.alloc_aux_region(DeviceId::Dram);
        assert_eq!(h.region(c1).kind(), RegionKind::Cache);
        h.release_region(c1).unwrap();
        let c2 = h.alloc_aux_region(DeviceId::Dram);
        assert_eq!(c1, c2, "aux region is reused");
    }

    #[test]
    fn survivor_to_old_reclassifies() {
        let mut h = test_heap();
        let s = h.take_region(RegionKind::Survivor).unwrap();
        h.survivor_to_old(s).unwrap();
        assert!(h.survivor().is_empty());
        assert_eq!(h.old(), &[s]);
        assert_eq!(h.region(s).kind(), RegionKind::Old);
    }
}
