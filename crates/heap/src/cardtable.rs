//! A card-table remembered set.
//!
//! HotSpot's Parallel Scavenge tracks old-to-young references with a card
//! table: one dirty byte per 512-byte card of the old space, set by the
//! mutator write barrier. At collection time the GC scans dirty cards,
//! walking the objects that overlap them to find the actual references.
//! Compared with G1-style precise remembered sets, the barrier is cheaper
//! (a blind byte store) but collection pays a scanning cost proportional
//! to dirty-card coverage rather than to the number of references.
//!
//! The reproduction's collectors use precise remsets by default (both
//! behave identically for the paper's experiments); the card table is
//! selectable per heap for the remset-mechanism ablation and to mirror
//! the stock PS design.

use crate::addr::Addr;
use crate::region::RegionId;

/// Bytes covered by one card.
pub const CARD_BYTES: u64 = 512;

const CARD_SHIFT: u32 = 9;

/// A card table covering the whole heap address range.
#[derive(Debug, Clone)]
pub struct CardTable {
    cards: Vec<u8>,
    region_shift: u32,
    cards_per_region: u32,
    /// Regions with at least one dirty card (coarse index so collection
    /// does not scan the table for clean regions).
    dirty_regions: Vec<bool>,
}

impl CardTable {
    /// Creates a clean card table for a heap of `regions` regions of
    /// `1 << region_shift` bytes each.
    pub fn new(regions: u32, region_shift: u32) -> CardTable {
        let cards_per_region = 1u32 << (region_shift - CARD_SHIFT);
        // Address space starts at region index 1 (null protection).
        let cards = vec![0u8; ((regions as usize + 1) * cards_per_region as usize) + 1];
        CardTable {
            cards,
            region_shift,
            cards_per_region,
            dirty_regions: vec![false; regions as usize],
        }
    }

    #[inline]
    fn index(&self, slot: Addr) -> usize {
        (slot.raw() >> CARD_SHIFT) as usize
    }

    /// Marks the card containing `slot` dirty. Out-of-range addresses
    /// (auxiliary cache regions) are ignored.
    pub fn dirty(&mut self, slot: Addr) {
        let i = self.index(slot);
        if i < self.cards.len() {
            self.cards[i] = 1;
            let region = slot.region(self.region_shift) as usize;
            if region < self.dirty_regions.len() {
                self.dirty_regions[region] = true;
            }
        }
    }

    /// Whether the card containing `slot` is dirty.
    pub fn is_dirty(&self, slot: Addr) -> bool {
        let i = self.index(slot);
        i < self.cards.len() && self.cards[i] != 0
    }

    /// Whether `region` has any dirty card.
    pub fn region_dirty(&self, region: RegionId) -> bool {
        self.dirty_regions
            .get(region as usize)
            .copied()
            .unwrap_or(false)
    }

    /// Number of dirty cards in `region`.
    pub fn dirty_cards_in_region(&self, region: RegionId) -> u32 {
        if !self.region_dirty(region) {
            return 0;
        }
        let start = ((region as u64 + 1) << self.region_shift >> CARD_SHIFT) as usize;
        let end = start + self.cards_per_region as usize;
        self.cards[start..end.min(self.cards.len())]
            .iter()
            .map(|&c| c as u32)
            .sum()
    }

    /// Clears all cards of `region`, returning how many were dirty.
    pub fn clear_region(&mut self, region: RegionId) -> u32 {
        let dirty = self.dirty_cards_in_region(region);
        if dirty > 0 {
            let start = ((region as u64 + 1) << self.region_shift >> CARD_SHIFT) as usize;
            let end = (start + self.cards_per_region as usize).min(self.cards.len());
            self.cards[start..end].fill(0);
        }
        if (region as usize) < self.dirty_regions.len() {
            self.dirty_regions[region as usize] = false;
        }
        dirty
    }

    /// Cards per region (scanning granularity).
    pub fn cards_per_region(&self) -> u32 {
        self.cards_per_region
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHIFT: u32 = 16; // 64 KiB regions → 128 cards each

    #[test]
    fn dirty_and_query_roundtrip() {
        let mut ct = CardTable::new(8, SHIFT);
        let slot = Addr::from_parts(3, 1000, SHIFT);
        assert!(!ct.is_dirty(slot));
        ct.dirty(slot);
        assert!(ct.is_dirty(slot));
        // Same card, different word.
        assert!(ct.is_dirty(Addr::from_parts(3, 1008, SHIFT)));
        // Different card.
        assert!(!ct.is_dirty(Addr::from_parts(3, 2048, SHIFT)));
        assert!(ct.region_dirty(3));
        assert!(!ct.region_dirty(2));
    }

    #[test]
    fn counts_and_clears_per_region() {
        let mut ct = CardTable::new(8, SHIFT);
        ct.dirty(Addr::from_parts(2, 0, SHIFT));
        ct.dirty(Addr::from_parts(2, 600, SHIFT));
        ct.dirty(Addr::from_parts(2, 640, SHIFT)); // same card as 600
        ct.dirty(Addr::from_parts(5, 0, SHIFT));
        assert_eq!(ct.dirty_cards_in_region(2), 2);
        assert_eq!(ct.dirty_cards_in_region(5), 1);
        assert_eq!(ct.dirty_cards_in_region(0), 0);
        assert_eq!(ct.clear_region(2), 2);
        assert_eq!(ct.dirty_cards_in_region(2), 0);
        assert!(!ct.region_dirty(2));
        assert!(ct.region_dirty(5), "other regions untouched");
    }

    #[test]
    fn out_of_range_slots_are_ignored() {
        let mut ct = CardTable::new(2, SHIFT);
        // An auxiliary region far past the Java heap.
        let aux = Addr::from_parts(1000, 0, SHIFT);
        ct.dirty(aux);
        assert!(!ct.is_dirty(aux));
    }

    #[test]
    fn cards_per_region_matches_geometry() {
        let ct = CardTable::new(4, SHIFT);
        assert_eq!(ct.cards_per_region(), (1 << SHIFT) / 512);
    }
}
