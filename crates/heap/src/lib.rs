//! A region-based managed heap with a Java-like object model.
//!
//! This crate is the substrate standing in for the HotSpot heap: it gives
//! the collectors in `nvmgc-core` real objects to trace and copy. Objects
//! live in fixed-size regions; each region is placed on a simulated memory
//! device (DRAM or NVM). The heap performs no timing itself — the metered
//! accessors in `nvmgc-core` charge every read/write to the `nvmgc-memsim`
//! model.
//!
//! Key pieces:
//!
//! - [`addr`] — 64-bit heap addresses encoding (region, offset).
//! - [`alloc`] — the two-level crash-consistent region allocator
//!   (persistent lower table + volatile upper free-stack) beneath the
//!   heap's region management.
//! - [`class`] — a class table describing object layouts (reference slot
//!   count + payload size), including array-like classes.
//! - [`object`] — header encoding: class id, GC age, forwarding pointers.
//! - [`region`] — fixed-size regions with a bump pointer, a kind
//!   (eden/survivor/old/free) and flush-tracking state used by the
//!   asynchronous region flushing optimization.
//! - [`heap`] — the region table, allocation entry points and space
//!   management (young/old generations, device placement policy).
//! - [`remset`] — per-region remembered sets populated by the mutator
//!   write barrier.
//! - [`verify`] — a tracing verifier used by tests to check heap
//!   integrity after collections.

#![warn(missing_docs)]

pub mod addr;
pub mod alloc;
pub mod cardtable;
pub mod class;
pub mod heap;
pub mod object;
pub mod region;
pub mod remset;
pub mod verify;

pub use addr::Addr;
pub use alloc::{LowerEntry, RegionAllocator};
pub use cardtable::CardTable;
pub use class::{ClassId, ClassInfo, ClassTable};
pub use heap::{DevicePlacement, Heap, HeapConfig};
pub use object::Header;
pub use region::{Region, RegionId, RegionKind};
pub use remset::RememberedSet;

/// Errors surfaced by heap operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeapError {
    /// No free region is available for the requested purpose.
    OutOfRegions,
    /// An object larger than a region was requested.
    ObjectTooLarge {
        /// The requested object size in bytes.
        size: usize,
    },
    /// An address did not decode to a live region.
    BadAddress(Addr),
    /// A region was released while already free. Silent in release
    /// builds before PR 8, this corrupted free-count accounting with no
    /// signal; the collector surfaces it as an oracle violation.
    DoubleRelease(RegionId),
    /// [`Heap::take_region`] was asked for a role the free-list
    /// allocator cannot serve (free, cache, or humongous).
    BadTakeKind(RegionKind),
    /// A region-kind transition found the region in an unexpected state.
    KindMismatch {
        /// The region being transitioned.
        region: RegionId,
        /// The kind the transition requires.
        expected: RegionKind,
        /// The kind actually found.
        found: RegionKind,
    },
    /// A header accessor needed a normal header but found a forwarding
    /// pointer — reading class/age bits out of a forwarded header yields
    /// garbage, so the checked accessors reject it.
    ForwardedHeader {
        /// The raw header word.
        raw: u64,
    },
    /// A forwarding install found the header already forwarded.
    /// Overwriting it would silently drop the original forwardee —
    /// release builds used to only `debug_assert!` here; the collector
    /// surfaces this as an oracle violation.
    AlreadyForwarded {
        /// The raw (forwarded) header word that would have been lost.
        raw: u64,
    },
    /// A durable-view comparison was handed a view whose length does not
    /// match the lower table — comparing misaligned tables would silently
    /// mis-classify divergent regions during crash recovery.
    ViewLenMismatch {
        /// The lower-table length the allocator expected.
        expected: usize,
        /// The length of the view actually supplied.
        found: usize,
    },
}

impl std::fmt::Display for HeapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeapError::OutOfRegions => write!(f, "out of free regions"),
            HeapError::ObjectTooLarge { size } => {
                write!(f, "object of {size} bytes exceeds region size")
            }
            HeapError::BadAddress(a) => write!(f, "bad heap address {a:?}"),
            HeapError::DoubleRelease(r) => {
                write!(f, "region {r} released while already free")
            }
            HeapError::BadTakeKind(k) => {
                write!(f, "take_region cannot serve role {k:?}")
            }
            HeapError::KindMismatch {
                region,
                expected,
                found,
            } => write!(
                f,
                "region {region} kind transition expected {expected:?}, found {found:?}"
            ),
            HeapError::ForwardedHeader { raw } => {
                write!(f, "forwarded header {raw:#x} has no class/age bits")
            }
            HeapError::AlreadyForwarded { raw } => {
                write!(
                    f,
                    "header {raw:#x} is already a forwarding pointer; \
                     overwriting it would lose the forwardee"
                )
            }
            HeapError::ViewLenMismatch { expected, found } => {
                write!(
                    f,
                    "durable view has {found} entries, lower table has {expected}"
                )
            }
        }
    }
}

impl std::error::Error for HeapError {}
