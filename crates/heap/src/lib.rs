//! A region-based managed heap with a Java-like object model.
//!
//! This crate is the substrate standing in for the HotSpot heap: it gives
//! the collectors in `nvmgc-core` real objects to trace and copy. Objects
//! live in fixed-size regions; each region is placed on a simulated memory
//! device (DRAM or NVM). The heap performs no timing itself — the metered
//! accessors in `nvmgc-core` charge every read/write to the `nvmgc-memsim`
//! model.
//!
//! Key pieces:
//!
//! - [`addr`] — 64-bit heap addresses encoding (region, offset).
//! - [`class`] — a class table describing object layouts (reference slot
//!   count + payload size), including array-like classes.
//! - [`object`] — header encoding: class id, GC age, forwarding pointers.
//! - [`region`] — fixed-size regions with a bump pointer, a kind
//!   (eden/survivor/old/free) and flush-tracking state used by the
//!   asynchronous region flushing optimization.
//! - [`heap`] — the region table, allocation entry points and space
//!   management (young/old generations, device placement policy).
//! - [`remset`] — per-region remembered sets populated by the mutator
//!   write barrier.
//! - [`verify`] — a tracing verifier used by tests to check heap
//!   integrity after collections.

#![warn(missing_docs)]

pub mod addr;
pub mod cardtable;
pub mod class;
pub mod heap;
pub mod object;
pub mod region;
pub mod remset;
pub mod verify;

pub use addr::Addr;
pub use cardtable::CardTable;
pub use class::{ClassId, ClassInfo, ClassTable};
pub use heap::{DevicePlacement, Heap, HeapConfig};
pub use object::Header;
pub use region::{Region, RegionId, RegionKind};
pub use remset::RememberedSet;

/// Errors surfaced by heap operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeapError {
    /// No free region is available for the requested purpose.
    OutOfRegions,
    /// An object larger than a region was requested.
    ObjectTooLarge {
        /// The requested object size in bytes.
        size: usize,
    },
    /// An address did not decode to a live region.
    BadAddress(Addr),
}

impl std::fmt::Display for HeapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeapError::OutOfRegions => write!(f, "out of free regions"),
            HeapError::ObjectTooLarge { size } => {
                write!(f, "object of {size} bytes exceeds region size")
            }
            HeapError::BadAddress(a) => write!(f, "bad heap address {a:?}"),
        }
    }
}

impl std::error::Error for HeapError {}
