//! Heap verification.
//!
//! The verifier traces the reachable object graph from a root set and
//! checks structural invariants. Tests use it to prove that a collection
//! preserved the graph: [`GraphDigest`] computed before and after a GC
//! must match (addresses change, but shape, classes and payloads do not).

use crate::addr::Addr;
use crate::heap::Heap;
use crate::region::RegionKind;
use crate::HeapError;
use nvmgc_memsim::{FxHashMap, FxHashSet};

/// A canonical digest of the reachable object graph.
///
/// Digests are address-independent: objects are numbered in first-visit
/// (DFS from roots, slots in order) order, and the digest folds in each
/// object's class, payload words and the visit-numbers of its referents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphDigest {
    /// Number of reachable objects.
    pub objects: u64,
    /// Total reachable bytes.
    pub bytes: u64,
    /// Order-sensitive structural checksum.
    pub checksum: u64,
}

/// Structural problems found by [`verify_heap`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A reference pointed outside any allocated region.
    DanglingRef {
        /// The offending reference value.
        target: Addr,
    },
    /// A reference pointed into a free or cache region.
    RefIntoFreeRegion {
        /// The offending reference value.
        target: Addr,
    },
    /// An object header was still a forwarding pointer outside GC.
    StaleForwarding {
        /// The object whose header is forwarded.
        obj: Addr,
    },
    /// A reference pointed below a region's allocated watermark.
    RefPastTop {
        /// The offending reference value.
        target: Addr,
    },
    /// An old-space cross-region reference was not recorded in the target
    /// region's remembered set.
    MissingRemsetEntry {
        /// The slot holding the unrecorded reference.
        slot: Addr,
        /// The referenced object.
        target: Addr,
    },
}

fn fold(h: u64, v: u64) -> u64 {
    // FxHash-style fold; deterministic and order-sensitive.
    (h.rotate_left(5) ^ v).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95)
}

/// Traces the graph from `roots` and returns its digest, or the first
/// structural error found.
pub fn verify_heap(heap: &Heap, roots: &[Addr]) -> Result<GraphDigest, VerifyError> {
    // The digest numbers objects by first-visit order, so it is a pure
    // function of the traversal — the map's hasher (a deterministic
    // FxHash here, for speed on the per-GC-cycle digest passes) cannot
    // influence it.
    let mut order: FxHashMap<u64, u64> = FxHashMap::default();
    let mut stack: Vec<Addr> = Vec::new();
    let mut checksum = 0u64;
    let mut objects = 0u64;
    let mut bytes = 0u64;

    let push = |addr: Addr,
                order: &mut FxHashMap<u64, u64>,
                stack: &mut Vec<Addr>|
     -> Result<Option<u64>, VerifyError> {
        if addr.is_null() {
            return Ok(None);
        }
        let region = match heap.region_of(addr) {
            Ok(r) => r,
            Err(HeapError::BadAddress(_)) => return Err(VerifyError::DanglingRef { target: addr }),
            Err(_) => unreachable!(),
        };
        let r = heap.region(region);
        match r.kind() {
            RegionKind::Free | RegionKind::Cache => {
                return Err(VerifyError::RefIntoFreeRegion { target: addr })
            }
            _ => {}
        }
        if addr.offset(heap.shift()) >= r.used() {
            return Err(VerifyError::RefPastTop { target: addr });
        }
        if let Some(&n) = order.get(&addr.raw()) {
            return Ok(Some(n));
        }
        let n = order.len() as u64;
        order.insert(addr.raw(), n);
        stack.push(addr);
        Ok(Some(n))
    };

    for &root in roots {
        let n = push(root, &mut order, &mut stack)?;
        checksum = fold(checksum, n.map_or(u64::MAX, |v| v + 1));
    }

    while let Some(obj) = stack.pop() {
        let h = heap.header(obj);
        if h.is_forwarded() {
            return Err(VerifyError::StaleForwarding { obj });
        }
        let class = h.class_id();
        let info = heap.classes().get(class);
        objects += 1;
        bytes += info.size() as u64;
        checksum = fold(checksum, class as u64);
        for i in 0..info.num_refs {
            let target = heap.read_ref(heap.ref_slot(obj, i));
            let n = push(target, &mut order, &mut stack)?;
            checksum = fold(checksum, n.map_or(u64::MAX, |v| v + 1));
        }
        let data_words = info.data_bytes / 8;
        for w in 0..data_words {
            checksum = fold(checksum, heap.read_data(obj, w));
        }
    }

    Ok(GraphDigest {
        objects,
        bytes,
        checksum,
    })
}

/// Checks the remembered-set invariant over the *reachable* graph: every
/// cross-region reference stored in an old-like slot and pointing at a
/// tracked region must be present in the target region's remembered set.
/// (Precise-remset mode only; card-table heaps track dirtiness per card
/// instead.)
///
/// Returns the number of checked references, or the first violation.
pub fn verify_remsets(heap: &Heap, roots: &[Addr]) -> Result<u64, VerifyError> {
    let shift = heap.shift();
    let mut seen: FxHashSet<u64> = FxHashSet::default();
    let mut stack: Vec<Addr> = Vec::new();
    for &root in roots {
        if !root.is_null() && seen.insert(root.raw()) {
            stack.push(root);
        }
    }
    let mut checked = 0u64;
    while let Some(obj) = stack.pop() {
        let h = heap.header(obj);
        if h.is_forwarded() {
            return Err(VerifyError::StaleForwarding { obj });
        }
        let info = heap.classes().get(h.class_id());
        let src_region = obj.region(shift);
        let src_old = matches!(
            heap.region(src_region).kind(),
            RegionKind::Old | RegionKind::Humongous
        );
        for i in 0..info.num_refs {
            let slot = heap.ref_slot(obj, i);
            let target = heap.read_ref(slot);
            if target.is_null() {
                continue;
            }
            let dst_region = match heap.region_of(target) {
                Ok(r) => r,
                Err(_) => return Err(VerifyError::DanglingRef { target }),
            };
            if src_old && dst_region != src_region {
                checked += 1;
                let recorded = heap.region(dst_region).remset.iter().any(|s| s == slot);
                if !recorded {
                    return Err(VerifyError::MissingRemsetEntry { slot, target });
                }
            }
            if seen.insert(target.raw()) {
                stack.push(target);
            }
        }
    }
    Ok(checked)
}

/// How much of an object's address range a durable-line predicate covers.
///
/// Used by the power-failure oracle: an object is recoverable from a
/// crash image only if one of its copies is [`LineCoverage::Full`] —
/// partial coverage means a torn object whose missing lines are
/// unrecoverable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineCoverage {
    /// Every cache line of the range satisfies the predicate.
    Full,
    /// Some, but not all, lines satisfy the predicate.
    Partial,
    /// No line of the range satisfies the predicate.
    None,
}

/// Classifies the cache-line coverage of `[addr, addr + size)` under a
/// per-line predicate (e.g. "is this line durable in the crash image").
/// The predicate receives each 64 B line base address exactly once.
pub fn classify_lines(addr: u64, size: u32, durable: &mut dyn FnMut(u64) -> bool) -> LineCoverage {
    const LINE: u64 = 64;
    let first = addr & !(LINE - 1);
    let last = (addr + u64::from(size.max(1)) - 1) & !(LINE - 1);
    let mut hit = 0u64;
    let mut total = 0u64;
    let mut line = first;
    loop {
        total += 1;
        if durable(line) {
            hit += 1;
        }
        if line == last {
            break;
        }
        line += LINE;
    }
    match hit {
        0 => LineCoverage::None,
        h if h == total => LineCoverage::Full,
        _ => LineCoverage::Partial,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::ClassTable;
    use crate::heap::{DevicePlacement, HeapConfig};
    use crate::object::Header;

    fn heap_with(region_count: u32) -> Heap {
        let mut classes = ClassTable::new();
        classes.register("pair", 2, 16);
        classes.register("leaf", 0, 8);
        Heap::new(
            HeapConfig {
                region_size: 1 << 12,
                heap_regions: region_count,
                young_regions: region_count,
                placement: DevicePlacement::all_nvm(),
                card_table: false,
            },
            classes,
        )
    }

    #[test]
    fn digest_of_simple_graph() {
        let mut h = heap_with(4);
        let e = h.take_region(RegionKind::Eden).unwrap();
        let a = h.alloc_object(e, 0).unwrap();
        let b = h.alloc_object(e, 1).unwrap();
        h.write_ref(h.ref_slot(a, 0), b);
        h.write_data(a, 0, 42);
        let d = verify_heap(&h, &[a]).unwrap();
        assert_eq!(d.objects, 2);
        assert_eq!(d.bytes, 40 + 16);
    }

    #[test]
    fn digest_is_address_independent_but_content_sensitive() {
        let build = |payload: u64| {
            let mut h = heap_with(4);
            let e = h.take_region(RegionKind::Eden).unwrap();
            // Allocate filler to shift addresses in the second heap.
            if payload == 42 {
                h.alloc_object(e, 1).unwrap();
            }
            let a = h.alloc_object(e, 0).unwrap();
            let b = h.alloc_object(e, 1).unwrap();
            h.write_ref(h.ref_slot(a, 0), b);
            h.write_data(a, 0, payload);
            (verify_heap(&h, &[a]).unwrap(), ())
        };
        let (d1, _) = build(42);
        let (d2, _) = build(42);
        assert_eq!(d1, d2, "same shape+content, different addresses");
        let (d3, _) = build(43);
        assert_ne!(d1.checksum, d3.checksum, "payload change must show");
    }

    #[test]
    fn shared_and_cyclic_references_terminate() {
        let mut h = heap_with(4);
        let e = h.take_region(RegionKind::Eden).unwrap();
        let a = h.alloc_object(e, 0).unwrap();
        let b = h.alloc_object(e, 0).unwrap();
        // a <-> b cycle plus both roots.
        h.write_ref(h.ref_slot(a, 0), b);
        h.write_ref(h.ref_slot(b, 0), a);
        h.write_ref(h.ref_slot(b, 1), a);
        let d = verify_heap(&h, &[a, b]).unwrap();
        assert_eq!(d.objects, 2);
    }

    #[test]
    fn dangling_reference_detected() {
        let mut h = heap_with(4);
        let e = h.take_region(RegionKind::Eden).unwrap();
        let a = h.alloc_object(e, 0).unwrap();
        h.write_ref(h.ref_slot(a, 0), Addr(!7));
        assert!(matches!(
            verify_heap(&h, &[a]),
            Err(VerifyError::DanglingRef { .. })
        ));
    }

    #[test]
    fn ref_into_free_region_detected() {
        let mut h = heap_with(4);
        let e = h.take_region(RegionKind::Eden).unwrap();
        let dead = h.take_region(RegionKind::Eden).unwrap();
        let a = h.alloc_object(e, 0).unwrap();
        let b = h.alloc_object(dead, 1).unwrap();
        h.write_ref(h.ref_slot(a, 0), b);
        h.release_region(dead).unwrap();
        assert!(matches!(
            verify_heap(&h, &[a]),
            Err(VerifyError::RefIntoFreeRegion { .. })
        ));
    }

    #[test]
    fn stale_forwarding_detected() {
        let mut h = heap_with(4);
        let e = h.take_region(RegionKind::Eden).unwrap();
        let a = h.alloc_object(e, 1).unwrap();
        let b = h.alloc_object(e, 1).unwrap();
        h.set_header(a, Header::forwarding(b));
        assert!(matches!(
            verify_heap(&h, &[a]),
            Err(VerifyError::StaleForwarding { .. })
        ));
    }

    #[test]
    fn ref_past_top_detected() {
        let mut h = heap_with(4);
        let e = h.take_region(RegionKind::Eden).unwrap();
        let a = h.alloc_object(e, 0).unwrap();
        // Address inside the region but past the bump pointer.
        let bogus = h.addr_of(e, 1024);
        h.write_ref(h.ref_slot(a, 0), bogus);
        assert!(matches!(
            verify_heap(&h, &[a]),
            Err(VerifyError::RefPastTop { .. })
        ));
    }

    #[test]
    fn remset_invariant_holds_for_barriered_stores() {
        let mut h = heap_with(6);
        let e = h.take_region(RegionKind::Eden).unwrap();
        let o = h.take_region(RegionKind::Old).unwrap();
        let anchor = h.alloc_object(o, 0).unwrap();
        let young = h.alloc_object(e, 1).unwrap();
        h.write_ref_with_barrier(h.ref_slot(anchor, 0), young);
        let checked = verify_remsets(&h, &[anchor]).unwrap();
        assert_eq!(checked, 1);
    }

    #[test]
    fn remset_invariant_catches_unbarriered_stores() {
        let mut h = heap_with(6);
        let e = h.take_region(RegionKind::Eden).unwrap();
        let o = h.take_region(RegionKind::Old).unwrap();
        let anchor = h.alloc_object(o, 0).unwrap();
        let young = h.alloc_object(e, 1).unwrap();
        // Raw store without the barrier: the invariant must flag it.
        h.write_ref(h.ref_slot(anchor, 0), young);
        assert!(matches!(
            verify_remsets(&h, &[anchor]),
            Err(VerifyError::MissingRemsetEntry { .. })
        ));
    }

    #[test]
    fn null_roots_are_fine() {
        let h = heap_with(2);
        let d = verify_heap(&h, &[Addr::NULL]).unwrap();
        assert_eq!(d.objects, 0);
    }

    #[test]
    fn classify_lines_covers_full_partial_none() {
        let durable = |limit: u64| move |line: u64| line < limit;
        // Object spanning 4 lines at 0x2000..0x2100.
        assert_eq!(
            classify_lines(0x2000, 256, &mut durable(0x2100)),
            LineCoverage::Full
        );
        assert_eq!(
            classify_lines(0x2000, 256, &mut durable(0x2080)),
            LineCoverage::Partial
        );
        assert_eq!(
            classify_lines(0x2000, 256, &mut durable(0x2000)),
            LineCoverage::None
        );
        // Unaligned interior object: single line, size clamped to ≥ 1.
        assert_eq!(
            classify_lines(0x2010, 0, &mut durable(0x2040)),
            LineCoverage::Full
        );
        // Unaligned two-line straddle.
        assert_eq!(
            classify_lines(0x2030, 32, &mut durable(0x2040)),
            LineCoverage::Partial
        );
    }
}
