//! The HotSpot-style GC log produced by the runner.

use nvmgc_core::GcConfig;
use nvmgc_workloads::{app, run_app, AppRunConfig};

fn cfg(keep_log: bool) -> AppRunConfig {
    let mut spec = app("dotty");
    spec.alloc_young_multiple = 2.0;
    let mut c = AppRunConfig::standard(spec, GcConfig::plus_all(12, 0));
    let hb = c.heap_bytes();
    c.gc.write_cache.max_bytes = hb / 32;
    c.gc.header_map.max_bytes = hb / 32;
    c.keep_gc_log = keep_log;
    c
}

#[test]
fn log_records_every_cycle_in_hotspot_shape() {
    let r = run_app(&cfg(true)).unwrap();
    assert_eq!(r.gc_log.cycles(), r.gc.cycles());
    let text = r.gc_log.render();
    assert!(text.contains("Pause Young (Normal)"));
    assert!(text.contains("scan "));
    assert!(text.contains("GC(0)"));
    // Occupancy transitions are shown as `NK->MK`.
    assert!(text.contains("K->"), "{text}");
}

#[test]
fn log_is_empty_unless_requested() {
    let r = run_app(&cfg(false)).unwrap();
    assert_eq!(r.gc_log.cycles(), 0);
    assert!(r.gc_log.render().is_empty());
}
