//! Mutator lane (application-parallelism) behaviour.

use nvmgc_core::GcConfig;
use nvmgc_heap::DevicePlacement;
use nvmgc_workloads::{app, run_app, AppRunConfig};

fn cfg_with_threads(app_threads: u32) -> AppRunConfig {
    let mut spec = app("kmeans");
    spec.alloc_young_multiple = if cfg!(debug_assertions) { 1.5 } else { 3.0 };
    if cfg!(debug_assertions) {
        spec.touches_per_alloc = 3;
    }
    spec.app_threads = app_threads;
    let mut cfg = AppRunConfig::standard(spec, GcConfig::vanilla(8));
    cfg.heap.region_size = 32 << 10;
    cfg.heap.heap_regions = 512;
    cfg.heap.young_regions = 96;
    cfg
}

#[test]
fn more_app_threads_shorten_the_mutator_phase() {
    let serial = run_app(&cfg_with_threads(1)).unwrap();
    let parallel = run_app(&cfg_with_threads(16)).unwrap();
    assert!(
        parallel.mutator_ns < serial.mutator_ns,
        "16 lanes must beat 1: {} vs {}",
        parallel.mutator_ns,
        serial.mutator_ns
    );
    // But not by the full 16x: the lanes share the device bandwidth.
    assert!(
        parallel.mutator_ns * 16 > serial.mutator_ns,
        "speedup cannot exceed the lane count"
    );
    // Same amount of real work either way.
    assert_eq!(serial.allocated_objects, parallel.allocated_objects);
}

#[test]
fn lane_scaling_saturates_on_nvm_before_dram() {
    let time_at = |lanes: u32, dram: bool| {
        let mut cfg = cfg_with_threads(lanes);
        if dram {
            cfg.heap.placement = DevicePlacement::all_dram();
        }
        run_app(&cfg).unwrap().mutator_ns as f64
    };
    let nvm_speedup = time_at(2, false) / time_at(32, false);
    let dram_speedup = time_at(2, true) / time_at(32, true);
    assert!(
        dram_speedup > nvm_speedup,
        "DRAM app phases keep scaling further: dram {dram_speedup:.2} vs nvm {nvm_speedup:.2}"
    );
}

#[test]
fn lanes_do_not_change_the_object_graph() {
    // The graph (and thus GC work) is driven by the RNG sequence, which
    // is lane-independent; only timing differs.
    let a = run_app(&cfg_with_threads(1)).unwrap();
    let b = run_app(&cfg_with_threads(8)).unwrap();
    assert_eq!(a.gc.cycles(), b.gc.cycles());
    assert_eq!(a.gc.copied_bytes, b.gc.copied_bytes);
    assert_eq!(a.allocated_objects, b.allocated_objects);
}
