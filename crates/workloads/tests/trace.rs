//! The deterministic trace layer, end to end through `run_app`.
//!
//! Three guarantees under test:
//!
//! - tracing is opt-in: a default run records nothing and costs nothing;
//! - the event log is a pure function of the configuration and seed —
//!   two runs produce byte-identical JSON, which is what lets the CI
//!   trace suite `diff` artifacts across `NVMGC_JOBS` settings;
//! - the trace agrees with the GC log: every logged collection has a
//!   matching `"cycle"` span with *identical* simulated timestamps, even
//!   under a fault-injection plan with persistence enabled.

use nvmgc_core::fault::{FaultPlan, Severity};
use nvmgc_core::GcConfig;
use nvmgc_memsim::{TraceCat, TRACK_CYCLE};
use nvmgc_workloads::spec::ClassMix;
use nvmgc_workloads::{run_app, AppRunConfig, WorkloadSpec};

/// Matches the fault-matrix horizon so generated windows overlap the run.
const HORIZON_NS: u64 = 40_000_000;

fn small_spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "trace-test",
        alloc_young_multiple: 3.0,
        mix: vec![ClassMix {
            num_refs: 2,
            data_bytes: 24,
            weight: 1,
        }],
        survival: 0.4,
        keep_gcs: 1,
        old_link_fraction: 0.1,
        chain_fraction: 0.0,
        cpu_per_alloc_ns: 20.0,
        touches_per_alloc: 1,
        app_threads: 4,
        share_fraction: 0.15,
        old_anchor_bytes: 8 << 10,
    }
}

fn traced_cfg() -> AppRunConfig {
    let mut cfg = AppRunConfig::standard(small_spec(), GcConfig::plus_all(12, 1 << 20));
    cfg.heap.region_size = 16 << 10;
    cfg.heap.heap_regions = 96;
    cfg.heap.young_regions = 32;
    cfg.trace = true;
    cfg.keep_gc_log = true;
    cfg
}

#[test]
fn trace_is_empty_unless_requested() {
    let mut cfg = traced_cfg();
    cfg.trace = false;
    let r = run_app(&cfg).unwrap();
    assert!(r.trace.is_empty());
    assert!(r.gc.cycles() > 0, "workload must actually collect");
}

#[test]
fn same_seed_runs_are_byte_identical() {
    let a = run_app(&traced_cfg()).unwrap();
    let b = run_app(&traced_cfg()).unwrap();
    assert!(!a.trace.is_empty());
    assert_eq!(a.trace, b.trace);
    // The serialized form (what the trace harness writes and CI diffs)
    // must match byte for byte, not just structurally.
    let ja = serde_json::to_string(&a.trace).unwrap();
    let jb = serde_json::to_string(&b.trace).unwrap();
    assert_eq!(ja, jb);
}

#[test]
fn canonical_order_is_time_then_track() {
    let r = run_app(&traced_cfg()).unwrap();
    let keys: Vec<(u64, u32)> = r.trace.iter().map(|e| (e.ts, e.track)).collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    assert_eq!(keys, sorted);
}

#[test]
fn every_logged_cycle_has_a_matching_trace_span() {
    // A Moderate plan includes a WcDrainStall and a PowerFailure probe,
    // the latter auto-enabling the persistence model — so this one run
    // exercises fault-window annotation and fence emission too.
    let mut cfg = traced_cfg();
    cfg.gc.fault = FaultPlan::generate(0x7ACE, Severity::Moderate, HORIZON_NS);
    let r = run_app(&cfg).unwrap();

    let cycles: Vec<_> = r
        .trace
        .iter()
        .filter(|e| e.cat == TraceCat::Cycle && e.name == "cycle")
        .collect();
    let entries = r.gc_log.entries();
    assert!(!entries.is_empty());
    assert_eq!(cycles.len(), entries.len());
    for (span, entry) in cycles.iter().zip(entries) {
        assert_eq!(span.track, TRACK_CYCLE);
        assert_eq!(span.ts, entry.start, "evacuation start must agree");
        assert_eq!(span.ts + span.dur, entry.end, "pause end must agree");
    }

    // Each cycle span is accompanied by per-worker sub-phase spans that
    // lie inside the collection interval.
    let scans = r.trace.iter().filter(|e| e.name == "scan").count();
    assert!(scans >= entries.len() * cfg.gc.threads);

    // The injected plan annotates device lanes and the persistence model
    // stamps fences.
    assert!(r.trace.iter().any(|e| e.cat == TraceCat::Fault));
    assert!(r.trace.iter().any(|e| e.cat == TraceCat::Fence));
}
