//! Deterministic race exploration over full workload runs.
//!
//! With a race seed configured, the collector perturbs worker clocks at
//! seeded synchronization points (allocator take/release, header-map
//! install, durable fences), forcing adversarial interleavings under the
//! deterministic scheduler. These tests pin down that the exploration
//! layer (a) actually fires, (b) drives *distinct* interleavings across
//! seeds, (c) never provokes an oracle violation or graph corruption,
//! and (d) is itself deterministic per seed.

use nvmgc_core::fault::{FaultPlan, Severity};
use nvmgc_core::GcConfig;
use nvmgc_workloads::spec::ClassMix;
use nvmgc_workloads::{run_app, AppRunConfig, RunFailure, WorkloadSpec};

fn small_spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "race-explore",
        alloc_young_multiple: 3.0,
        mix: vec![ClassMix {
            num_refs: 2,
            data_bytes: 24,
            weight: 1,
        }],
        survival: 0.4,
        keep_gcs: 1,
        old_link_fraction: 0.1,
        chain_fraction: 0.0,
        cpu_per_alloc_ns: 20.0,
        touches_per_alloc: 1,
        app_threads: 4,
        share_fraction: 0.15,
        old_anchor_bytes: 8 << 10,
    }
}

fn raced_cfg(race_seed: Option<u64>) -> AppRunConfig {
    // 12 workers over the optimized configuration: the header map and
    // survivor/promotion paths are all active, so every race-site kind
    // (alloc take, alloc release, map install, durable fence) is hit.
    let mut cfg = AppRunConfig::standard(small_spec(), GcConfig::plus_all(12, 1 << 20));
    cfg.heap.region_size = 16 << 10;
    cfg.heap.heap_regions = 96;
    cfg.heap.young_regions = 32;
    cfg.gc.race.seed = race_seed;
    cfg
}

/// Interleaving fingerprint of a run: the fold of every cycle's race
/// digest, plus the total number of synchronization points crossed.
/// Completing at all means every oracle stayed green — accounting
/// violations and heap-structure errors surface as typed run failures,
/// and `run_app` structurally verifies the final reachable graph.
fn fingerprint(seed: u64) -> (u64, u64) {
    let r = run_app(&raced_cfg(Some(seed))).expect("raced run must not violate any oracle");
    let digest = r
        .cycles
        .iter()
        .fold(0u64, |acc, c| acc.rotate_left(13) ^ c.race_digest);
    let points: u64 = r.cycles.iter().map(|c| c.race_sync_points).sum();
    (digest, points)
}

#[test]
fn race_seeds_drive_distinct_interleavings_without_violations() {
    let baseline = run_app(&raced_cfg(None)).expect("baseline run");
    assert_eq!(
        baseline
            .cycles
            .iter()
            .map(|c| c.race_sync_points)
            .sum::<u64>(),
        0,
        "race exploration must be off without a seed"
    );

    let runs: Vec<_> = [0x000A_11CE, 0x0B0B_5EED, 0xCAFE_F00D]
        .iter()
        .map(|&s| fingerprint(s))
        .collect();
    for (digest, points) in &runs {
        assert!(
            *points > 0,
            "seeded run must cross synchronization points, got {points}"
        );
        assert_ne!(*digest, 0, "interleaving digest must fold in real state");
    }
    let mut digests: Vec<u64> = runs.iter().map(|r| r.0).collect();
    digests.sort_unstable();
    digests.dedup();
    assert_eq!(
        digests.len(),
        3,
        "three seeds must explore three distinct interleavings"
    );
}

#[test]
fn race_exploration_is_deterministic_per_seed() {
    assert_eq!(fingerprint(0xDEAD_BEEF), fingerprint(0xDEAD_BEEF));
}

#[test]
fn raced_cycles_preserve_the_graph_under_verification() {
    // A fault plan turns on per-cycle pre/post graph digest comparison;
    // race skew on top forces adversarial interleavings through the same
    // cycles. Every surviving cycle must still copy the graph exactly,
    // and a typed failure must never be a corruption report.
    let mut cfg = raced_cfg(Some(0x0DD_C0DE));
    cfg.gc.fault = FaultPlan::generate(7, Severity::Mild, 40_000_000);
    match run_app(&cfg) {
        Ok(r) => {
            assert!(r.cycles.iter().map(|c| c.race_sync_points).sum::<u64>() > 0);
            assert_eq!(
                r.digest_checks,
                r.gc.cycles(),
                "every raced cycle's pre/post digest was compared"
            );
        }
        Err(e) => {
            assert!(
                !matches!(
                    e.failure,
                    RunFailure::DigestMismatch { .. } | RunFailure::Verify(_)
                ),
                "race exploration must never corrupt the graph: {e}"
            );
        }
    }
}

#[test]
fn race_exploration_composes_with_the_durable_allocator() {
    // Race skew at allocator sites while the durable allocator journals
    // every take/release: the accounting and recovery oracles stay green.
    let mut cfg = raced_cfg(Some(0x5EED_FACE));
    cfg.gc.header_map.durable = true;
    cfg.gc.allocator.durable = true;
    let raced = run_app(&cfg).expect("raced durable-allocator run");
    assert!(raced.cycles.iter().map(|c| c.race_sync_points).sum::<u64>() > 0);
    assert!(raced.cycles.iter().map(|c| c.alloc_fences).sum::<u64>() > 0);
}
