//! End-to-end fault-injection properties over full workload runs.
//!
//! `run_app` under any generated [`FaultPlan`] must degrade gracefully:
//! either the run completes with every per-cycle graph digest matching,
//! or it fails with a typed [`RunError`] that names the injected faults —
//! never a panic and never silent corruption. And the whole outcome is a
//! pure function of the plan seed: a re-run is byte-identical.

use nvmgc_core::fault::{FaultPlan, Severity};
use nvmgc_core::GcConfig;
use nvmgc_workloads::spec::ClassMix;
use nvmgc_workloads::{run_app, AppRunConfig, RunFailure, WorkloadSpec};
use proptest::prelude::*;

/// Matches the horizon the `fault_matrix` harness sweeps: generated
/// windows overlap the first few tens of milliseconds of simulated run.
const HORIZON_NS: u64 = 40_000_000;

fn small_spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "prop-fault",
        alloc_young_multiple: 3.0,
        mix: vec![ClassMix {
            num_refs: 2,
            data_bytes: 24,
            weight: 1,
        }],
        survival: 0.4,
        keep_gcs: 1,
        old_link_fraction: 0.1,
        chain_fraction: 0.0,
        cpu_per_alloc_ns: 20.0,
        touches_per_alloc: 1,
        app_threads: 4,
        share_fraction: 0.15,
        old_anchor_bytes: 8 << 10,
    }
}

fn small_cfg(gc: GcConfig) -> AppRunConfig {
    let mut cfg = AppRunConfig::standard(small_spec(), gc);
    cfg.heap.region_size = 16 << 10;
    cfg.heap.heap_regions = 96;
    cfg.heap.young_regions = 32;
    cfg
}

fn faulted_cfg(seed: u64, sev: Severity, optimized: bool) -> AppRunConfig {
    let gc = if optimized {
        // 12 workers: above the header-map activation threshold, so
        // saturation faults have something to saturate.
        GcConfig::plus_all(12, 1 << 20)
    } else {
        GcConfig::vanilla(4)
    };
    let mut cfg = small_cfg(gc);
    cfg.gc.fault = FaultPlan::generate(seed, sev, HORIZON_NS);
    cfg
}

fn arb_severity() -> impl Strategy<Value = Severity> {
    prop_oneof![
        Just(Severity::Mild),
        Just(Severity::Moderate),
        Just(Severity::Severe),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Graceful degradation: every generated schedule either completes
    /// with a digest check per GC cycle, or yields a typed error that is
    /// not a corruption report and that names its injected faults.
    #[test]
    fn faulted_runs_degrade_gracefully(
        seed in any::<u64>(),
        sev in arb_severity(),
        optimized in any::<bool>(),
    ) {
        let cfg = faulted_cfg(seed, sev, optimized);
        prop_assert!(!cfg.gc.fault.is_empty());
        match run_app(&cfg) {
            Ok(res) => {
                prop_assert!(res.gc.cycles() > 0, "run exercised the collector");
                prop_assert_eq!(
                    res.digest_checks,
                    res.gc.cycles(),
                    "every cycle's pre/post digest was compared"
                );
            }
            Err(e) => {
                prop_assert!(
                    !matches!(
                        e.failure,
                        RunFailure::DigestMismatch { .. } | RunFailure::Verify(_)
                    ),
                    "fault plane must never corrupt the graph: {e}"
                );
                prop_assert!(
                    !e.active_faults.is_empty(),
                    "typed error must name its injected faults: {e}"
                );
            }
        }
    }

    /// Determinism: same plan seed, same outcome — timings, pause list,
    /// digest count, or the exact error text.
    #[test]
    fn faulted_runs_are_deterministic(
        seed in any::<u64>(),
        sev in arb_severity(),
    ) {
        let run = || {
            let cfg = faulted_cfg(seed, sev, true);
            match run_app(&cfg) {
                Ok(r) => (r.total_ns, r.gc.pauses_ns.clone(), r.digest_checks, String::new()),
                Err(e) => (0, Vec::new(), 0, e.to_string()),
            }
        };
        prop_assert_eq!(run(), run());
    }

    /// Durable-map crash recovery: a run whose power failure crashes a
    /// mid-flight evacuation must recover from the crash image, resume,
    /// and end with the *byte-identical* final graph digest of a
    /// never-crashed same-seed run — no object lost, duplicated, or
    /// corrupted across the crash boundary. The recovered run itself must
    /// be deterministic: re-running it reproduces every timing and
    /// recovery counter exactly.
    #[test]
    fn durable_recovery_matches_uncrashed_run(
        seed in any::<u64>(),
        severe in any::<bool>(),
    ) {
        // Moderate+ plans schedule power failures; Mild never does.
        let sev = if severe { Severity::Severe } else { Severity::Moderate };
        let mut crashed = faulted_cfg(seed, sev, true);
        crashed.gc.header_map.durable = true;
        let mut clean = crashed.clone();
        clean.gc.fault = FaultPlan::none();

        let crashed_run = || {
            match run_app(&crashed) {
                Ok(r) => {
                    let recovered: u64 = r.cycles.iter().map(|c| c.recovered_cycles).sum();
                    let resumed: u64 = r.cycles.iter().map(|c| c.resumed_evacuations).sum();
                    let replayed: u64 = r.cycles.iter().map(|c| c.replayed_map_entries).sum();
                    Ok((r.total_ns, r.final_digest, recovered, resumed, replayed))
                }
                Err(e) => Err(e),
            }
        };
        match crashed_run() {
            Ok(first) => {
                // Byte-identical replay of the whole crashed+recovered run.
                prop_assert_eq!(crashed_run().map_err(|e| e.to_string()), Ok(first.clone()));
                let clean_res = match run_app(&clean) {
                    Ok(r) => r,
                    Err(e) => return Err(TestCaseError::fail(format!("clean run failed: {e}"))),
                };
                prop_assert_eq!(
                    &first.1, &clean_res.final_digest,
                    "recovered graph differs from the never-crashed run"
                );
            }
            Err(e) => {
                // Severe plans may legitimately exhaust the small heap;
                // corruption is never acceptable.
                prop_assert!(
                    !matches!(
                        e.failure,
                        RunFailure::DigestMismatch { .. } | RunFailure::Verify(_)
                    ),
                    "recovery must never corrupt the graph: {e}"
                );
            }
        }
    }

    /// Allocator crash recovery: with the durable region allocator on, a
    /// crashed-and-recovered run's *final allocator state* — the free
    /// stack and every region's kind — must be byte-identical to a
    /// never-crashed same-seed run's. The allocator recovery scan rebuilt
    /// the volatile upper tree from the journaled lower tables and the
    /// rebuild converged on exactly the state a crash-free execution
    /// reaches, not merely an equivalent one.
    #[test]
    fn allocator_recovery_matches_uncrashed_run(
        seed in any::<u64>(),
        severe in any::<bool>(),
    ) {
        // Moderate+ plans schedule power failures; Mild never does.
        let sev = if severe { Severity::Severe } else { Severity::Moderate };
        let mut crashed = faulted_cfg(seed, sev, true);
        crashed.gc.header_map.durable = true;
        crashed.gc.allocator.durable = true;
        let mut clean = crashed.clone();
        clean.gc.fault = FaultPlan::none();

        match run_app(&crashed) {
            Ok(r) => {
                let clean_res = match run_app(&clean) {
                    Ok(r) => r,
                    Err(e) => return Err(TestCaseError::fail(format!("clean run failed: {e}"))),
                };
                prop_assert_eq!(
                    &r.final_digest, &clean_res.final_digest,
                    "recovered graph differs from the never-crashed run"
                );
                prop_assert_eq!(
                    &r.final_free_regions, &clean_res.final_free_regions,
                    "recovered free stack differs from the never-crashed run"
                );
                prop_assert_eq!(
                    &r.final_region_kinds, &clean_res.final_region_kinds,
                    "recovered region kinds differ from the never-crashed run"
                );
            }
            Err(e) => {
                prop_assert!(
                    !matches!(
                        e.failure,
                        RunFailure::DigestMismatch { .. } | RunFailure::Verify(_)
                    ),
                    "allocator recovery must never corrupt the graph: {e}"
                );
            }
        }
    }
}

/// Unfaulted runs skip digest tracing entirely — the robustness plane is
/// pay-for-what-you-use.
#[test]
fn unfaulted_runs_skip_digest_tracing() {
    let res = run_app(&small_cfg(GcConfig::vanilla(4))).unwrap();
    assert!(res.gc.cycles() > 0);
    assert_eq!(res.digest_checks, 0);
}
