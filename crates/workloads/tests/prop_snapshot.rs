//! Snapshot-equivalence oracle: forking a run from a warm
//! [`SimSnapshot`] must be bit-for-bit identical to a cold start.
//!
//! The sweep harnesses lean on this equivalence to run one warmup per
//! warm group and fork every member cell (`nvmgc-bench`'s forked-grid
//! runner); any divergence there silently invalidates every emitted
//! `results/*.json`. The property here re-proves it end to end over
//! random small grids: same config → capture + fork == cold `run_app`,
//! compared on the *entire* result (digests, per-cycle stats, memory
//! counters, trace events when enabled) via `Debug` rendering, which
//! prints every field of [`AppRunResult`] including float bits.
//!
//! A pinned companion test puts the snapshot boundary *inside* injected
//! fault windows and checks the restored image reproduces the window
//! edges exactly (the trace annotates every window span on the device
//! lanes, so edge drift would shift those events).

use nvmgc_core::fault::{FaultPlan, GcFaultPlan, Severity};
use nvmgc_core::GcConfig;
use nvmgc_memsim::{DeviceFault, DeviceId, FaultWindow, MemFaultPlan, TraceCat};
use nvmgc_workloads::runner::RunError;
use nvmgc_workloads::spec::ClassMix;
use nvmgc_workloads::{run_app, AppRunConfig, AppRunResult, SimSnapshot, WorkloadSpec};
use proptest::prelude::*;

/// Matches the fault-matrix harness horizon: generated windows overlap
/// the first few tens of milliseconds of simulated run.
const HORIZON_NS: u64 = 40_000_000;

fn small_spec(touches: u32) -> WorkloadSpec {
    WorkloadSpec {
        name: "prop-snapshot",
        alloc_young_multiple: 3.0,
        mix: vec![ClassMix {
            num_refs: 2,
            data_bytes: 24,
            weight: 1,
        }],
        survival: 0.4,
        keep_gcs: 1,
        old_link_fraction: 0.1,
        chain_fraction: 0.0,
        cpu_per_alloc_ns: 20.0,
        touches_per_alloc: touches,
        app_threads: 4,
        share_fraction: 0.15,
        old_anchor_bytes: 8 << 10,
    }
}

fn small_cfg(gc: GcConfig, seed: u64, touches: u32, trace: bool) -> AppRunConfig {
    let mut cfg = AppRunConfig::standard(small_spec(touches), gc);
    cfg.heap.region_size = 16 << 10;
    cfg.heap.heap_regions = 96;
    cfg.heap.young_regions = 32;
    cfg.seed = seed;
    cfg.trace = trace;
    cfg
}

/// Bit-for-bit comparison: `Debug` prints every field of the result
/// (or the typed error), so equal strings mean equal values.
fn render(r: &Result<AppRunResult, RunError>) -> String {
    format!("{r:?}")
}

fn arb_severity() -> impl Strategy<Value = Option<Severity>> {
    prop_oneof![
        Just(None),
        Just(Some(Severity::Mild)),
        Just(Some(Severity::Moderate)),
        Just(Some(Severity::Severe)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random small grids: every cell forked from its group's snapshot
    /// equals the same cell run cold. The two cells share the warmup
    /// prefix (same spec/seed/severity) and differ in collector config —
    /// exactly how `run_forked_cells` groups sweep grids.
    #[test]
    fn forked_cells_match_cold_runs_bit_for_bit(
        seed in 0u64..1 << 48,
        plan_seed in 0u64..1 << 48,
        sev in arb_severity(),
        touches in 1u32..4,
        trace in any::<bool>(),
    ) {
        let fault = match sev {
            Some(s) => FaultPlan::generate(plan_seed, s, HORIZON_NS),
            None => FaultPlan::none(),
        };
        // Vanilla and +all share the warm key: the fault plan's device
        // half and the thread count must match for both cells.
        let threads = 12;
        let mut cells = Vec::new();
        for gc in [GcConfig::vanilla(threads), GcConfig::plus_all(threads, 1 << 20)] {
            let mut cfg = small_cfg(gc, seed, touches, trace);
            cfg.gc.fault = fault.clone();
            cells.push(cfg);
        }
        prop_assert_eq!(
            SimSnapshot::warm_key_for(&cells[0]),
            SimSnapshot::warm_key_for(&cells[1]),
            "grid cells must share one warm group"
        );
        let snap = SimSnapshot::capture(&cells[0]).expect("warmup completes");
        prop_assert!(snap.warmup_allocated_objects() > 0);
        for cfg in &cells {
            let cold = run_app(cfg);
            let forked = snap.fork(cfg);
            prop_assert_eq!(render(&cold), render(&forked));
        }
    }
}

/// Pinned: the snapshot boundary falls *inside* open fault windows — a
/// latency spike, a bandwidth collapse, and a stall all span the whole
/// horizon, so the warmup ends mid-window on every one of them. The
/// forked run must reproduce the cold run bit-for-bit, and the restored
/// image must carry the exact window edges: the trace annotates each
/// window as a span on its device lane, so the fault-category events of
/// cold and forked runs must agree exactly.
#[test]
fn snapshot_inside_fault_windows_restores_edges_exactly() {
    let window = FaultWindow {
        start: 0,
        end: HORIZON_NS,
    };
    let mem = MemFaultPlan {
        events: vec![
            DeviceFault::LatencySpike {
                dev: DeviceId::Nvm,
                window,
                factor: 2.5,
            },
            DeviceFault::BandwidthCollapse {
                dev: DeviceId::Nvm,
                window: FaultWindow {
                    start: 1_000,
                    end: HORIZON_NS / 2,
                },
                factor: 3.0,
            },
            DeviceFault::Stall {
                dev: DeviceId::Dram,
                window: FaultWindow {
                    start: 5_000,
                    end: 50_000,
                },
            },
        ],
    };
    let mut cfg = small_cfg(GcConfig::vanilla(4), 0x5EED, 2, true);
    cfg.gc.fault = FaultPlan {
        seed: 0,
        mem,
        gc: GcFaultPlan::default(),
    };

    let snap = SimSnapshot::capture(&cfg).expect("warmup completes");
    let cold = run_app(&cfg).expect("cold run completes");
    let forked = snap.fork(&cfg).expect("forked run completes");

    // Whole-result equality first: any drift shows up here.
    assert_eq!(format!("{cold:?}"), format!("{forked:?}"));

    // Then the pinned claim: the injected windows' trace annotations —
    // emitted from the restored fault state — carry identical edges.
    let windows = |r: &AppRunResult| {
        r.trace
            .iter()
            .filter(|e| e.cat == TraceCat::Fault && e.dur > 0)
            .map(|e| (e.name, e.ts, e.dur, e.track))
            .collect::<Vec<_>>()
    };
    let cold_windows = windows(&cold);
    assert!(
        !cold_windows.is_empty(),
        "fault windows must be annotated on the trace"
    );
    assert_eq!(cold_windows, windows(&forked));
    assert!(
        cold_windows
            .iter()
            .any(|&(_, ts, dur, _)| ts == 0 && dur == HORIZON_NS),
        "the horizon-spanning window must keep its exact edges: {cold_windows:?}"
    );
}
