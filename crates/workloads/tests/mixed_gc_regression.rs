//! Regression test: promotion-heavy workloads under the adaptive
//! (mixed-GC) trigger. This scenario once exposed two real bugs — stale
//! remembered-set entries surviving region recycling, and mutator anchor
//! handles dangling after a mixed collection moved the anchors.

use nvmgc_core::GcConfig;
use nvmgc_workloads::runner::GcTrigger;
use nvmgc_workloads::{app, run_app, AppRunConfig};

fn run(gc: GcConfig, trigger: GcTrigger) -> (usize, usize, u64) {
    let mut spec = app("scala-stm-bench7");
    spec.keep_gcs = 4; // beyond the tenure age: heavy promotion
    spec.alloc_young_multiple = if cfg!(debug_assertions) { 8.0 } else { 12.0 };
    // Scaled down so the scenario also runs quickly under debug builds.
    spec.touches_per_alloc = 2;
    let mut cfg = AppRunConfig::standard(spec, gc);
    cfg.heap.region_size = 16 << 10;
    cfg.heap.heap_regions = 640;
    cfg.heap.young_regions = 96;
    let hb = cfg.heap_bytes();
    if cfg.gc.write_cache.enabled {
        cfg.gc.write_cache.max_bytes = hb / 32;
    }
    if cfg.gc.header_map.enabled {
        cfg.gc.header_map.max_bytes = hb / 32;
    }
    cfg.trigger = trigger;
    let r = run_app(&cfg).expect("run survives");
    let failures = r.cycles.iter().map(|c| c.evac_failures).sum();
    (r.gc.cycles(), r.mixed_cycles, failures)
}

#[test]
fn promotion_heavy_young_only_survives_via_self_forwarding() {
    let (cycles, mixed, _failures) = run(GcConfig::vanilla(28), GcTrigger::YoungOnly);
    assert!(cycles > 5);
    assert_eq!(mixed, 0);
}

#[test]
fn adaptive_trigger_runs_mixed_gcs_and_avoids_evac_failures() {
    let (cycles, mixed, failures) = run(GcConfig::vanilla(28), GcTrigger::Adaptive { ihop: 0.25 });
    assert!(cycles > 5);
    assert!(mixed > 0, "old occupancy must trip the IHOP threshold");
    assert_eq!(
        failures, 0,
        "mixed GCs bound the old generation, so evacuation never fails"
    );
}

#[test]
fn adaptive_trigger_with_all_optimizations() {
    let (_, mixed, failures) = run(
        GcConfig::plus_all(28, 0),
        GcTrigger::Adaptive { ihop: 0.25 },
    );
    assert!(mixed > 0);
    assert_eq!(failures, 0);
}
