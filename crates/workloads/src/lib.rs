//! Synthetic memory-intensive application workloads.
//!
//! The paper evaluates on Spark (page-rank, kmeans, cc, sssp), 22
//! Renaissance applications, and Cassandra. Those applications cannot run
//! on this simulated JVM substrate, so this crate reproduces their
//! *GC-visible signatures* instead: a parameterized mutator allocates real
//! object graphs with each application's characteristic object-size mix,
//! survival behaviour, pointer density, old-generation linkage
//! (remembered-set pressure), traversal shape (chains for load imbalance)
//! and compute intensity. See `DESIGN.md` for the substitution argument
//! and [`profiles`] for the per-application parameters.
//!
//! - [`spec`] — the workload parameter vocabulary.
//! - [`mutator`] — the allocation/mutation engine driving a heap +
//!   collector, with every memory operation charged to the timing model.
//! - [`runner`] — runs one application to completion against a collector
//!   configuration and gathers the measurements experiments need.
//! - [`profiles`] — the 26 paper applications.
//! - [`cassandra`] — the open-loop request/latency workload of Fig. 8.
//! - [`scenario`] — million-client open-loop cohorts with shaped load,
//!   HDR latency distributions and attributed SLO-violation windows.
//! - [`prefetch_micro`] — the §4.3 software-prefetch microbenchmark.

#![warn(missing_docs)]

pub mod cassandra;
pub mod mutator;
pub mod prefetch_micro;
pub mod profiles;
pub mod runner;
pub mod scenario;
pub mod spec;

pub use mutator::Mutator;
pub use profiles::{all_apps, app, fig1_apps, renaissance_apps, spark_apps};
pub use runner::{
    fault_names, run_app, AppRunConfig, AppRunResult, RunError, RunFailure, RunPhase, SimSnapshot,
};
pub use scenario::{run_scenario, ScenarioKind, ScenarioResult, ScenarioSpec, SloWindow};
pub use spec::{ClassMix, WorkloadSpec};
