//! The mutator engine.
//!
//! Interprets a [`WorkloadSpec`] against a real heap: allocates objects
//! into eden TLAB regions, links survivors into the live graph (roots,
//! old-generation anchors, or the serial chain), touches live data to
//! generate application-phase memory traffic, and asks for a GC when the
//! young generation fills. Every memory operation is charged to the
//! timing model under the mutator's thread id, so application time and
//! application-phase bandwidth come out of the same model as GC time.

use crate::spec::WorkloadSpec;
use nvmgc_core::access::Gx;
use nvmgc_core::collector::ROOT_ARRAY_BASE;
use nvmgc_heap::{Addr, Heap, HeapError, RegionId, RegionKind};
use nvmgc_memsim::{DeviceId, MemorySystem, Ns};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Why the mutator paused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutatorStep {
    /// The young generation is full; run a GC and call
    /// [`Mutator::on_gc_complete`].
    NeedsGc,
    /// The workload finished its allocation budget.
    Done,
}

/// The mutator state for one application run.
#[derive(Debug, Clone)]
pub struct Mutator {
    spec: WorkloadSpec,
    rng: StdRng,
    /// Memory-model thread id for mutator traffic.
    pub tid: usize,
    /// The mutator's simulated clock (the lane currently executing; at
    /// phase boundaries, the maximum over all lanes).
    pub clock: Ns,
    /// Per-lane clocks modelling `spec.app_threads` overlapping
    /// application threads. Work is dispatched to the least-advanced lane.
    lanes: Vec<Ns>,
    /// Root array (the GC updates it in place).
    pub roots: Vec<Addr>,
    eden: Option<RegionId>,
    free_root_slots: Vec<u32>,
    /// `(expire_at_gc, root_index)` pairs, unsorted.
    expiries: Vec<(u32, u32)>,
    chain_head: Option<u32>,
    chain_tail: Option<u32>,
    chain_started_gc: u32,
    /// Root-array indices of the long-lived anchor objects. Anchors are
    /// real GC roots: mixed/full collections may move or (if unrooted)
    /// reclaim old objects, so the mutator must hold them through the
    /// root array like any managed reference.
    old_anchor_roots: Vec<u32>,
    target_bytes: u64,
    allocated_bytes: u64,
    allocated_objects: u64,
    gc_count: u32,
    mix_cum: Vec<u32>,
    mix_total: u32,
}

impl Mutator {
    /// Creates a mutator. `tid` must be a valid memory-model thread id
    /// (use one past the GC worker ids). The allocation budget is
    /// `spec.alloc_young_multiple ×` the heap's young-generation bytes.
    pub fn new(spec: WorkloadSpec, seed: u64, tid: usize, young_bytes: u64) -> Mutator {
        let mut cum = Vec::with_capacity(spec.mix.len());
        let mut total = 0;
        for m in &spec.mix {
            total += m.weight;
            cum.push(total);
        }
        let target_bytes = (spec.alloc_young_multiple * young_bytes as f64) as u64;
        let lanes = vec![0; spec.app_threads.max(1) as usize];
        Mutator {
            spec,
            rng: StdRng::seed_from_u64(seed),
            tid,
            clock: 0,
            lanes,
            roots: Vec::new(),
            eden: None,
            free_root_slots: Vec::new(),
            expiries: Vec::new(),
            chain_head: None,
            chain_tail: None,
            chain_started_gc: 0,
            old_anchor_roots: Vec::new(),
            target_bytes,
            allocated_bytes: 0,
            allocated_objects: 0,
            gc_count: 0,
            mix_cum: cum,
            mix_total: total,
        }
    }

    /// The workload spec driving this mutator.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Bytes allocated so far.
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated_bytes
    }

    /// Objects allocated so far.
    pub fn allocated_objects(&self) -> u64 {
        self.allocated_objects
    }

    /// GCs observed so far.
    pub fn gc_count(&self) -> u32 {
        self.gc_count
    }

    /// Pre-tenures the workload's long-lived anchor objects into the old
    /// generation (run once before the allocation loop).
    pub fn setup(&mut self, heap: &mut Heap, mem: &mut MemorySystem) -> Result<(), HeapError> {
        let anchor_size = heap.classes().get(0).size() as u64;
        let count = self.spec.old_anchor_bytes / anchor_size.max(1);
        let mut region = None;
        let mut anchors: Vec<Addr> = Vec::new();
        let mut gx = Gx::new(heap, mem);
        for _ in 0..count {
            loop {
                let r = match region {
                    Some(r) => r,
                    None => {
                        let r = gx.heap.take_region(RegionKind::Old)?;
                        region = Some(r);
                        r
                    }
                };
                let (obj, t) = gx.alloc_object(r, 0, self.clock);
                match obj {
                    Some(obj) => {
                        self.clock = t;
                        anchors.push(obj);
                        break;
                    }
                    None => region = None,
                }
            }
        }
        for obj in anchors {
            let idx = self.take_root_slot(mem, obj);
            self.old_anchor_roots.push(idx);
        }
        for lane in &mut self.lanes {
            *lane = self.clock;
        }
        Ok(())
    }

    fn pick_class(&mut self) -> u32 {
        let x = self.rng.random_range(0..self.mix_total);
        // invariant: mix_cum is a running sum ending at mix_total, so any
        // x drawn from 0..mix_total is below its last entry.
        let idx = self
            .mix_cum
            .iter()
            .position(|&c| x < c)
            .expect("cumulative weights cover the range");
        self.spec.mix_class_id(idx)
    }

    fn root_read(&mut self, mem: &mut MemorySystem, idx: u32) -> Addr {
        self.clock = mem.read_word(
            self.tid,
            DeviceId::Dram,
            ROOT_ARRAY_BASE + idx as u64 * 8,
            self.clock,
        );
        self.roots[idx as usize]
    }

    fn root_write(&mut self, mem: &mut MemorySystem, idx: u32, value: Addr) {
        self.roots[idx as usize] = value;
        self.clock = mem.write_word(
            self.tid,
            DeviceId::Dram,
            ROOT_ARRAY_BASE + idx as u64 * 8,
            self.clock,
        );
    }

    fn take_root_slot(&mut self, mem: &mut MemorySystem, value: Addr) -> u32 {
        let idx = match self.free_root_slots.pop() {
            Some(i) => i,
            None => {
                self.roots.push(Addr::NULL);
                (self.roots.len() - 1) as u32
            }
        };
        self.root_write(mem, idx, value);
        idx
    }

    /// Picks the least-advanced mutator lane and makes it current.
    fn enter_lane(&mut self) -> usize {
        // invariant: lanes is sized spec.app_threads.max(1) ≥ 1 at
        // construction and never shrinks.
        let (lane, _) = self
            .lanes
            .iter()
            .enumerate()
            .min_by_key(|&(_, &t)| t)
            .expect("at least one lane");
        self.clock = self.lanes[lane];
        lane
    }

    /// Parks the current lane and sets the public clock to the barrier
    /// time (all application threads stop for STW events).
    fn exit_to_barrier(&mut self, lane: usize) {
        self.lanes[lane] = self.clock;
        // invariant: lanes is non-empty (see enter_lane), so max exists.
        self.clock = self.lanes.iter().copied().max().expect("lanes");
    }

    /// Runs the allocation loop until a GC is needed or the budget is
    /// exhausted.
    ///
    /// Allocations are spread over `spec.app_threads` lanes whose memory
    /// operations overlap in the bandwidth model — this is what lets a
    /// memory-intensive application phase saturate NVM like the paper's
    /// multi-threaded Spark executors do.
    pub fn run(
        &mut self,
        heap: &mut Heap,
        mem: &mut MemorySystem,
    ) -> Result<MutatorStep, HeapError> {
        loop {
            let lane = self.enter_lane();
            if self.allocated_bytes >= self.target_bytes {
                self.exit_to_barrier(lane);
                return Ok(MutatorStep::Done);
            }
            self.clock += self.spec.cpu_per_alloc_ns as Ns;
            let class = self.pick_class();
            // Allocate from the eden TLAB, growing eden until the young
            // budget is exhausted.
            let obj = loop {
                let region = match self.eden {
                    Some(r) => r,
                    None => {
                        if heap.young_full() {
                            self.exit_to_barrier(lane);
                            return Ok(MutatorStep::NeedsGc);
                        }
                        let r = heap.take_region(RegionKind::Eden)?;
                        self.eden = Some(r);
                        r
                    }
                };
                let (obj, t) = {
                    let mut gx = Gx::new(heap, mem);
                    gx.alloc_object(region, class, self.clock)
                };
                match obj {
                    Some(o) => {
                        self.clock = t;
                        break o;
                    }
                    None => self.eden = None,
                }
            };
            let size = heap.object_size(obj) as u64;
            self.allocated_bytes += size;
            self.allocated_objects += 1;
            // Stamp a distinguishable payload (init cost already charged).
            if heap.classes().get(heap.class_of(obj)).data_bytes >= 8 {
                heap.write_data(obj, 0, self.allocated_objects);
            }
            self.touch_live(heap, mem);
            self.link(heap, mem, obj);
            if self.rng.random_bool(self.spec.share_fraction) {
                self.cross_link(heap, mem);
            }
            self.lanes[lane] = self.clock;
        }
    }

    /// Random field reads/writes on live objects (application traffic).
    fn touch_live(&mut self, heap: &mut Heap, mem: &mut MemorySystem) {
        for k in 0..self.spec.touches_per_alloc {
            if self.roots.is_empty() {
                return;
            }
            let idx = self.rng.random_range(0..self.roots.len() as u32);
            let target = self.root_read(mem, idx);
            if target.is_null() {
                continue;
            }
            let info = heap.classes().get(heap.class_of(target));
            if info.data_bytes < 8 {
                continue;
            }
            let w = self.rng.random_range(0..info.data_bytes / 8);
            let mut gx = Gx::new(heap, mem);
            // Application phases are read-dominated (scanning cached
            // datasets); roughly one store per five loads.
            if k % 5 == 4 {
                self.clock = gx.write_data(self.tid, target, w, 1, self.clock);
            } else {
                let (_, t) = gx.read_data(self.tid, target, w, self.clock);
                self.clock = t;
            }
        }
    }

    /// Decides the new object's fate and links it into the live graph.
    fn link(&mut self, heap: &mut Heap, mem: &mut MemorySystem, obj: Addr) {
        if !self.rng.random_bool(self.spec.survival) {
            return; // garbage
        }
        let roll: f64 = self.rng.random();
        if roll < self.spec.chain_fraction {
            self.chain_append(heap, mem, obj);
            return;
        }
        if roll < self.spec.chain_fraction + self.spec.old_link_fraction
            && !self.old_anchor_roots.is_empty()
        {
            // Link from a random old anchor slot (write barrier →
            // remembered-set entry). Overwriting the slot retires the
            // previous referent. The anchor is re-read through the root
            // array — mixed/full collections may have moved it.
            let idx = self.old_anchor_roots
                [self.rng.random_range(0..self.old_anchor_roots.len() as u32) as usize];
            let anchor = self.root_read(mem, idx);
            debug_assert!(!anchor.is_null());
            let nrefs = heap.num_refs(anchor);
            let slot = heap.ref_slot(anchor, self.rng.random_range(0..nrefs));
            let mut gx = Gx::new(heap, mem);
            self.clock = gx.write_ref(self.tid, slot, obj, self.clock);
            return;
        }
        // Plain medium-lived root.
        let idx = self.take_root_slot(mem, obj);
        self.expiries
            .push((self.gc_count + self.spec.keep_gcs, idx));
    }

    /// Adds a cross-reference between two random live objects, creating
    /// shared structure (multiple slots reaching one object).
    fn cross_link(&mut self, heap: &mut Heap, mem: &mut MemorySystem) {
        if self.roots.len() < 2 {
            return;
        }
        let a_idx = self.rng.random_range(0..self.roots.len() as u32);
        let b_idx = self.rng.random_range(0..self.roots.len() as u32);
        let a = self.root_read(mem, a_idx);
        let b = self.root_read(mem, b_idx);
        if a.is_null() || b.is_null() || a == b {
            return;
        }
        let nrefs = heap.num_refs(a);
        if nrefs == 0 {
            return;
        }
        let slot = heap.ref_slot(a, self.rng.random_range(0..nrefs));
        let mut gx = Gx::new(heap, mem);
        self.clock = gx.write_ref(self.tid, slot, b, self.clock);
    }

    /// Appends to the serial chain (load-imbalance source).
    fn chain_append(&mut self, heap: &mut Heap, mem: &mut MemorySystem, obj: Addr) {
        match self.chain_tail {
            Some(tail_idx) => {
                let tail = self.root_read(mem, tail_idx);
                debug_assert!(!tail.is_null());
                let nrefs = heap.num_refs(tail);
                if nrefs > 0 {
                    let slot = heap.ref_slot(tail, 0);
                    let mut gx = Gx::new(heap, mem);
                    self.clock = gx.write_ref(self.tid, slot, obj, self.clock);
                    self.root_write(mem, tail_idx, obj);
                } else {
                    // A ref-less tail cannot be extended; restart the chain.
                    self.root_write(mem, tail_idx, obj);
                }
            }
            None => {
                let head = self.take_root_slot(mem, obj);
                let tail = self.take_root_slot(mem, obj);
                self.chain_head = Some(head);
                self.chain_tail = Some(tail);
                self.chain_started_gc = self.gc_count;
            }
        }
    }

    /// Acknowledges a completed GC: advances the clock past the pause,
    /// drops expired roots and possibly the chain.
    pub fn on_gc_complete(&mut self, gc_end: Ns) {
        self.clock = self.clock.max(gc_end);
        for lane in &mut self.lanes {
            *lane = self.clock;
        }
        self.gc_count += 1;
        self.eden = None;
        let gc = self.gc_count;
        let mut expired: Vec<u32> = Vec::new();
        self.expiries.retain(|&(at, idx)| {
            if at <= gc {
                expired.push(idx);
                false
            } else {
                true
            }
        });
        for idx in expired {
            self.roots[idx as usize] = Addr::NULL;
            self.free_root_slots.push(idx);
        }
        if let (Some(h), Some(t)) = (self.chain_head, self.chain_tail) {
            if gc - self.chain_started_gc >= self.spec.keep_gcs.max(1) {
                self.roots[h as usize] = Addr::NULL;
                self.roots[t as usize] = Addr::NULL;
                self.free_root_slots.push(h);
                self.free_root_slots.push(t);
                self.chain_head = None;
                self.chain_tail = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ClassMix;
    use nvmgc_heap::{DevicePlacement, HeapConfig};
    use nvmgc_memsim::MemConfig;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "unit",
            alloc_young_multiple: 0.5,
            mix: vec![
                ClassMix {
                    num_refs: 2,
                    data_bytes: 16,
                    weight: 3,
                },
                ClassMix {
                    num_refs: 0,
                    data_bytes: 56,
                    weight: 1,
                },
            ],
            survival: 0.5,
            keep_gcs: 1,
            old_link_fraction: 0.2,
            chain_fraction: 0.1,
            cpu_per_alloc_ns: 10.0,
            touches_per_alloc: 2,
            app_threads: 4,
            share_fraction: 0.1,
            old_anchor_bytes: 4 << 10,
        }
    }

    fn setup() -> (Heap, MemorySystem, Mutator) {
        let s = spec();
        let heap = Heap::new(
            HeapConfig {
                region_size: 16 << 10,
                heap_regions: 64,
                young_regions: 16,
                placement: DevicePlacement::all_nvm(),
                card_table: false,
            },
            s.build_classes(),
        );
        let mut mem = MemorySystem::new(MemConfig::default());
        mem.set_threads(2);
        let young = 16 * (16 << 10) as u64;
        let m = Mutator::new(s, 7, 1, young);
        (heap, mem, m)
    }

    #[test]
    fn setup_pretenures_anchors() {
        let (mut h, mut mem, mut m) = setup();
        m.setup(&mut h, &mut mem).unwrap();
        assert!(!m.old_anchor_roots.is_empty());
        assert!(!h.old().is_empty());
        assert!(m.clock > 0, "anchor allocation charged");
    }

    #[test]
    fn run_allocates_until_done_on_small_budget() {
        let (mut h, mut mem, mut m) = setup();
        m.setup(&mut h, &mut mem).unwrap();
        // Budget 0.5 × young fits without any GC.
        let step = m.run(&mut h, &mut mem).unwrap();
        assert_eq!(step, MutatorStep::Done);
        assert!(m.allocated_bytes() >= 8 * (16 << 10) as u64);
        assert!(!m.roots.is_empty(), "some objects survived");
    }

    #[test]
    fn run_requests_gc_when_young_fills() {
        let (mut h, mut mem, mut m) = setup();
        m.target_bytes = u64::MAX / 2; // effectively unbounded
        m.setup(&mut h, &mut mem).unwrap();
        let step = m.run(&mut h, &mut mem).unwrap();
        assert_eq!(step, MutatorStep::NeedsGc);
        assert!(h.young_full());
    }

    #[test]
    fn expiries_drop_roots_after_keep_gcs() {
        let (mut h, mut mem, mut m) = setup();
        m.setup(&mut h, &mut mem).unwrap();
        m.run(&mut h, &mut mem).unwrap();
        let live_before = m.roots.iter().filter(|r| !r.is_null()).count();
        assert!(live_before > 0);
        // Two simulated GCs expire keep_gcs=1 roots.
        m.on_gc_complete(1_000);
        m.on_gc_complete(2_000);
        let live_after = m.roots.iter().filter(|r| !r.is_null()).count();
        assert!(live_after < live_before, "{live_after} < {live_before}");
        assert!(m.gc_count() == 2);
    }

    #[test]
    fn on_gc_complete_advances_clock_and_resets_eden() {
        let (mut h, mut mem, mut m) = setup();
        m.setup(&mut h, &mut mem).unwrap();
        let before = m.clock;
        m.on_gc_complete(before + 123_456);
        assert_eq!(m.clock, before + 123_456);
        assert!(m.eden.is_none());
        // A clock already past the pause end is not rewound.
        m.on_gc_complete(10);
        assert_eq!(m.clock, before + 123_456);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = || {
            let (mut h, mut mem, mut m) = setup();
            m.setup(&mut h, &mut mem).unwrap();
            m.run(&mut h, &mut mem).unwrap();
            (m.clock, m.allocated_objects(), m.roots.len())
        };
        assert_eq!(run(), run());
    }
}
