//! Application run orchestration.
//!
//! Runs one workload to completion against a collector configuration:
//! mutator phases alternate with stop-the-world young collections, phase
//! intervals are marked in the traffic sampler, and the result carries
//! everything the experiment harnesses report — application time, GC
//! pauses, per-phase bandwidth and raw memory-model counters.

use crate::mutator::{Mutator, MutatorStep};
use crate::spec::WorkloadSpec;
use nvmgc_core::fault::FaultPlan;
use nvmgc_core::gclog::{GcKind, GcLog};
use nvmgc_core::stats::{PauseSpan, RunGcStats};
use nvmgc_core::{G1Collector, GcConfig, GcError, GcStats};
use nvmgc_heap::verify::{verify_heap, GraphDigest, VerifyError};
use nvmgc_heap::{DevicePlacement, Heap, HeapConfig, RegionId, RegionKind};
use nvmgc_memsim::{
    DeviceId, MemConfig, MemStats, MemorySystem, Ns, PhaseKind, TraceCat, TraceEvent,
};
use std::fmt;

/// When collections beyond young GCs are triggered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GcTrigger {
    /// Young collections only — the paper's evaluated mode (its workloads
    /// never triggered a full GC and mixed GCs were rare, §2.1).
    YoungOnly,
    /// G1-like adaptive mode: a mixed collection replaces the young one
    /// whenever old-generation occupancy exceeds the threshold fraction
    /// of the heap (the initiating-heap-occupancy idea).
    Adaptive {
        /// Old-occupancy fraction of the heap that initiates mixed GCs.
        ihop: f64,
    },
}

/// Configuration of one application run.
#[derive(Debug, Clone)]
pub struct AppRunConfig {
    /// The workload.
    pub spec: WorkloadSpec,
    /// Collector configuration.
    pub gc: GcConfig,
    /// Heap geometry and placement.
    pub heap: HeapConfig,
    /// Memory-system configuration.
    pub mem: MemConfig,
    /// Workload RNG seed.
    pub seed: u64,
    /// Collection-triggering policy.
    pub trigger: GcTrigger,
    /// Keep a HotSpot-style GC log for the run.
    pub keep_gc_log: bool,
    /// Record full bandwidth time series (costs memory; timeline figures
    /// only).
    pub sample_series: bool,
    /// Record the deterministic trace log (per-worker phase spans, fault
    /// windows, persistence fences) into
    /// [`AppRunResult::trace`]. Costs memory; off by default.
    pub trace: bool,
}

impl AppRunConfig {
    /// A standard scaled-down run: 64 KiB regions, 48 MiB heap with an
    /// 8 MiB young generation, 512 KiB LLC, everything on NVM. The old
    /// space is generous because this reproduction (like the paper's
    /// evaluation) only runs young collections — promoted garbage is
    /// reclaimed by mixed GCs in real G1, which are out of scope.
    pub fn standard(spec: WorkloadSpec, gc: GcConfig) -> AppRunConfig {
        AppRunConfig {
            spec,
            gc,
            heap: HeapConfig {
                region_size: 64 << 10,
                heap_regions: 768,
                young_regions: 128,
                placement: DevicePlacement::all_nvm(),
                card_table: false,
            },
            mem: MemConfig {
                llc_bytes: 512 << 10,
                ..MemConfig::default()
            },
            seed: 0x5EED,
            trigger: GcTrigger::YoungOnly,
            keep_gc_log: false,
            sample_series: false,
            trace: false,
        }
    }

    /// Young-generation size in bytes.
    pub fn young_bytes(&self) -> u64 {
        self.heap.young_regions as u64 * self.heap.region_size as u64
    }

    /// Heap size in bytes (for sizing the write cache / header map like
    /// the paper: 1/32 of the heap each).
    pub fn heap_bytes(&self) -> u64 {
        self.heap.heap_regions as u64 * self.heap.region_size as u64
    }
}

/// Where in an application run a failure occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunPhase {
    /// Pre-tenuring of long-lived anchors before the allocation loop.
    Setup,
    /// The mutator's allocation loop.
    Mutator,
    /// A stop-the-world collection.
    Gc,
    /// Post-GC heap verification (performed on fault-injected runs).
    Verify,
}

impl fmt::Display for RunPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RunPhase::Setup => "setup",
            RunPhase::Mutator => "the mutator phase",
            RunPhase::Gc => "a collection",
            RunPhase::Verify => "post-GC verification",
        })
    }
}

/// What went wrong.
#[derive(Debug, PartialEq)]
pub enum RunFailure {
    /// The collector (or heap bookkeeping under it) failed.
    Gc(GcError),
    /// Post-GC tracing found a structural error (dangling reference,
    /// stale forwarding header, missing remembered-set entry, ...).
    Verify(VerifyError),
    /// The reachable object graph changed across a collection.
    DigestMismatch {
        /// Digest traced immediately before the collection.
        before: GraphDigest,
        /// Digest traced immediately after it.
        after: GraphDigest,
    },
    /// Consecutive collections reclaimed no room for the mutator: the
    /// live set (anchors + retained survivors) no longer fits the heap.
    /// Reported as a typed error instead of collecting in a futile loop
    /// forever — the workload analogue of an OutOfMemoryError.
    HeapExhausted {
        /// How many back-to-back collections made no allocation progress.
        futile_cycles: usize,
    },
    /// Accumulated GC pause time exceeded the total simulated run time —
    /// an accounting impossibility that a `saturating_sub` used to mask
    /// as `mutator_ns == 0`, poisoning every derived share and bandwidth
    /// figure downstream. Surfaced as a typed error instead.
    PauseExceedsTotal {
        /// Total simulated run time, ns.
        total_ns: Ns,
        /// Accumulated GC pause time, ns.
        gc_ns: Ns,
    },
}

impl fmt::Display for RunFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunFailure::Gc(e) => write!(f, "{e}"),
            RunFailure::Verify(e) => write!(f, "heap verification failed: {e:?}"),
            RunFailure::DigestMismatch { before, after } => write!(
                f,
                "graph digest changed across the collection: {before:?} -> {after:?}"
            ),
            RunFailure::HeapExhausted { futile_cycles } => write!(
                f,
                "heap exhausted: {futile_cycles} consecutive collections reclaimed no \
                 space for the mutator"
            ),
            RunFailure::PauseExceedsTotal { total_ns, gc_ns } => write!(
                f,
                "accumulated GC pause time ({gc_ns} ns) exceeds total simulated run \
                 time ({total_ns} ns): pause accounting is corrupt"
            ),
        }
    }
}

/// A failure while driving an application run.
///
/// Carries the workload name, where in the run the failure occurred, and
/// the names of any injected faults, so experiment harnesses can report
/// exactly which cell degraded and under which fault schedule.
#[derive(Debug)]
pub struct RunError {
    /// The workload being driven.
    pub workload: String,
    /// Where the failure occurred.
    pub phase: RunPhase,
    /// Zero-based index of the GC cycle in flight (or about to start).
    pub cycle: usize,
    /// Distinct names of the faults in the run's injection plan, in
    /// schedule order; empty when no faults were configured.
    pub active_faults: Vec<&'static str>,
    /// The underlying failure.
    pub failure: RunFailure,
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "workload '{}' failed during {} (GC cycle {}): {}",
            self.workload, self.phase, self.cycle, self.failure
        )?;
        if !self.active_faults.is_empty() {
            write!(f, " [injected faults: {}]", self.active_faults.join(", "))?;
        }
        Ok(())
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.failure {
            RunFailure::Gc(e) => Some(e),
            _ => None,
        }
    }
}

/// Distinct fault names in a plan, in schedule order (device faults
/// first). Used to annotate errors and experiment reports.
pub fn fault_names(plan: &FaultPlan) -> Vec<&'static str> {
    let mut names: Vec<&'static str> = Vec::new();
    for e in &plan.mem.events {
        if !names.contains(&e.name()) {
            names.push(e.name());
        }
    }
    for e in &plan.gc.events {
        if !names.contains(&e.name()) {
            names.push(e.name());
        }
    }
    names
}

/// The measurements from one application run.
#[derive(Debug)]
pub struct AppRunResult {
    /// Workload name.
    pub name: String,
    /// Total simulated run time (mutator + GC pauses).
    pub total_ns: Ns,
    /// Simulated time spent in mutator phases (excludes pauses).
    pub mutator_ns: Ns,
    /// Accumulated GC statistics.
    pub gc: RunGcStats,
    /// Per-cycle statistics.
    pub cycles: Vec<GcStats>,
    /// Average NVM (read, write) bandwidth during GC pauses, MB/s.
    pub gc_nvm_bandwidth: (f64, f64),
    /// Average NVM (read, write) bandwidth during mutator phases, MB/s.
    pub app_nvm_bandwidth: (f64, f64),
    /// Raw memory-model counters.
    pub mem_stats: MemStats,
    /// Raw per-bin NVM (read, write) byte series (when sampling enabled).
    pub nvm_series: Vec<(u64, u64)>,
    /// Raw per-bin DRAM (read, write) byte series (when sampling enabled).
    pub dram_series: Vec<(u64, u64)>,
    /// Sampler bin width, ns.
    pub bin_ns: Ns,
    /// GC pause intervals `(start, end)` in simulated time.
    pub pause_intervals: Vec<(Ns, Ns)>,
    /// The same pauses as typed spans carrying cycle kind (young, mixed,
    /// crash-recovery) — what the latency scenario suite attributes
    /// SLO-violation windows to.
    pub pause_spans: Vec<PauseSpan>,
    /// How many of the cycles were mixed collections.
    pub mixed_cycles: usize,
    /// The HotSpot-style GC log (empty unless requested).
    pub gc_log: GcLog,
    /// The deterministic trace events in canonical `(ts, track)` order
    /// (empty unless [`AppRunConfig::trace`] was set).
    pub trace: Vec<TraceEvent>,
    /// Peak old-generation footprint in regions.
    pub peak_old_regions: usize,
    /// Objects the mutator allocated.
    pub allocated_objects: u64,
    /// Pre/post graph-digest comparisons performed (fault runs only;
    /// every one of them matched, or the run would have errored).
    pub digest_checks: usize,
    /// Address-independent digest of the final reachable object graph.
    /// Two same-seed runs must agree on it regardless of fault plan,
    /// collector configuration, or crash recovery — the recovery tests
    /// compare a crashed-and-resumed run against a never-crashed one.
    pub final_digest: GraphDigest,
    /// The region allocator's free stack at the end of the run (top of
    /// stack last). A crashed-and-recovered run must end with exactly
    /// the free stack a never-crashed same-seed run ends with.
    pub final_free_regions: Vec<RegionId>,
    /// Per-region kinds from the allocator's lower table at the end of
    /// the run, indexed by region id over `0..heap_regions`.
    pub final_region_kinds: Vec<RegionKind>,
}

impl AppRunResult {
    /// Accumulated GC time in seconds.
    pub fn gc_seconds(&self) -> f64 {
        self.gc.total_pause_ns() as f64 / 1e9
    }

    /// Total run time in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.total_ns as f64 / 1e9
    }

    /// Mutator (non-GC) time in seconds.
    pub fn mutator_seconds(&self) -> f64 {
        self.mutator_ns as f64 / 1e9
    }

    /// Fraction of run time spent paused for GC.
    pub fn gc_share(&self) -> f64 {
        if self.total_ns == 0 {
            0.0
        } else {
            self.gc.total_pause_ns() as f64 / self.total_ns as f64
        }
    }
}

/// A warm simulation image: the complete simulation-visible state after
/// construction, pre-tenuring setup, and the *first mutator phase* of a
/// run (heap regions and remsets, the memory system with its ledgers,
/// LLC, prefetch tables, sampler, trace log and durability ledgers, and
/// the mutator with its RNG stream), plus the first scheduling step the
/// mutator returned.
///
/// Every run whose configuration shares the warmup-relevant prefix —
/// workload spec, seed, heap geometry, effective memory config, thread
/// count, sampling/tracing toggles and the device fault plan — executes
/// this prefix identically, because nothing in it consults the collector
/// configuration (the collector is constructed *after* the boundary and
/// touches no heap or memory state on construction). Sweep harnesses
/// therefore run the warmup once per group ([`SimSnapshot::capture`])
/// and complete each cell from a cheap clone ([`SimSnapshot::fork`]),
/// bit-identical to a cold start.
#[derive(Debug, Clone)]
pub struct SimSnapshot {
    heap: Heap,
    mem: MemorySystem,
    mutator: Mutator,
    first_step: MutatorStep,
    warm_key: String,
    warmup_allocs: u64,
}

impl SimSnapshot {
    /// The grouping key of `cfg`'s warmup prefix: two configurations
    /// fork from the same snapshot exactly when their keys are equal.
    pub fn warm_key_for(cfg: &AppRunConfig) -> String {
        format!(
            "{:?}|{:?}|{}|{:?}|{}|{}|{}|{:?}",
            cfg.spec,
            cfg.heap,
            cfg.seed,
            effective_mem_config(cfg),
            cfg.gc.threads.max(1),
            cfg.trace,
            cfg.sample_series,
            cfg.gc.fault.mem,
        )
    }

    /// Runs the warmup prefix of `cfg` and captures the resulting state.
    pub fn capture(cfg: &AppRunConfig) -> Result<SimSnapshot, RunError> {
        let active_faults = fault_names(&cfg.gc.fault);
        let fail = |phase: RunPhase, failure: RunFailure| RunError {
            workload: cfg.spec.name.to_owned(),
            phase,
            cycle: 0,
            active_faults: active_faults.clone(),
            failure,
        };

        let mut heap = Heap::new(cfg.heap.clone(), cfg.spec.build_classes());
        let mut mem = MemorySystem::new(effective_mem_config(cfg));
        let threads = cfg.gc.threads.max(1);
        mem.set_threads(threads + 1);
        // Tracing is enabled before the fault plan is installed so the
        // plan's windows land on the device lanes as annotations.
        mem.trace_mut().set_enabled(cfg.trace);
        mem.set_fault_plan(&cfg.gc.fault.mem);
        mem.sampler_mut().set_enabled(cfg.sample_series);

        let mut mutator = Mutator::new(cfg.spec.clone(), cfg.seed, threads, cfg.young_bytes());
        mutator
            .setup(&mut heap, &mut mem)
            .map_err(|e| fail(RunPhase::Setup, RunFailure::Gc(GcError::Heap(e))))?;

        let phase_start = mutator.clock;
        let first_step = mutator
            .run(&mut heap, &mut mem)
            .map_err(|e| fail(RunPhase::Mutator, RunFailure::Gc(GcError::Heap(e))))?;
        let gc_start = mutator.clock;
        mem.sampler_mut()
            .mark_phase(phase_start, gc_start, PhaseKind::Mutator);
        // The mutator runs on the lane one past the GC workers.
        mem.trace_mut().span(
            "mutator",
            TraceCat::Mutator,
            threads as u32,
            phase_start,
            gc_start,
            0,
        );
        let warmup_allocs = mutator.allocated_objects();
        Ok(SimSnapshot {
            heap,
            mem,
            mutator,
            first_step,
            warm_key: Self::warm_key_for(cfg),
            warmup_allocs,
        })
    }

    /// The grouping key this snapshot was captured under.
    pub fn warm_key(&self) -> &str {
        &self.warm_key
    }

    /// Objects the mutator allocated during the captured warmup — the
    /// deterministic amount of work each fork skips re-simulating.
    pub fn warmup_allocated_objects(&self) -> u64 {
        self.warmup_allocs
    }

    /// Clones the captured state back out (heap, memory system, mutator,
    /// first scheduling step). The snapshot itself stays intact, so any
    /// number of restores can fork from one warm image.
    pub fn restore(&self) -> (Heap, MemorySystem, Mutator, MutatorStep) {
        (
            self.heap.clone(),
            self.mem.clone(),
            self.mutator.clone(),
            self.first_step,
        )
    }

    /// Completes an application run for `cfg` forked from this warm
    /// image — bit-identical to `run_app(cfg)` from a cold start.
    ///
    /// # Panics
    ///
    /// Panics if `cfg`'s warmup prefix differs from the one captured
    /// (the forked run would silently diverge from a cold start).
    pub fn fork(&self, cfg: &AppRunConfig) -> Result<AppRunResult, RunError> {
        assert_eq!(
            self.warm_key,
            Self::warm_key_for(cfg),
            "forked config must share the snapshot's warmup prefix"
        );
        let (heap, mem, mutator, first_step) = self.restore();
        finish_run(cfg, heap, mem, mutator, first_step)
    }
}

/// The memory configuration a run actually uses. Power-failure faults
/// need the durability ledger; enable it automatically and key its drain
/// schedule to the fault seed so a plan replay reproduces the exact same
/// crash images.
fn effective_mem_config(cfg: &AppRunConfig) -> MemConfig {
    let mut mem_cfg = cfg.mem.clone();
    if cfg
        .gc
        .fault
        .gc
        .events
        .iter()
        .any(|e| matches!(e, nvmgc_core::GcFault::PowerFailure { .. }))
    {
        mem_cfg.persist.enabled = true;
        mem_cfg.persist.seed = cfg.gc.fault.seed;
    }
    mem_cfg
}

/// Runs one application to completion.
///
/// The memory model assigns thread ids `0..gc.threads` to GC workers and
/// `gc.threads` to the mutator.
///
/// When the collector configuration carries a fault-injection plan, the
/// device-level schedule is installed into the memory system here, and
/// the reachable graph is traced before and after every collection — a
/// digest mismatch or structural error surfaces as a typed [`RunError`]
/// naming the injected faults, never a panic.
pub fn run_app(cfg: &AppRunConfig) -> Result<AppRunResult, RunError> {
    let snap = SimSnapshot::capture(cfg)?;
    finish_run(cfg, snap.heap, snap.mem, snap.mutator, snap.first_step)
}

/// Mutator (non-pause) time of a run: total minus accumulated GC pauses,
/// as a *checked* subtraction. GC time exceeding total time is an
/// accounting impossibility; the old `saturating_sub` silently clamped it
/// to zero, hiding corrupt pause bookkeeping inside plausible-looking
/// results. Kept as a standalone function so the regression test pins the
/// error arm directly.
fn mutator_time(total_ns: Ns, gc_ns: Ns) -> Result<Ns, RunFailure> {
    total_ns
        .checked_sub(gc_ns)
        .ok_or(RunFailure::PauseExceedsTotal { total_ns, gc_ns })
}

/// Completes a run from a warm image: constructs the collector and
/// drives the mutator-phase / collection loop to completion. `first_step`
/// is the scheduling step the warmup's mutator phase already produced
/// (its sampler mark and trace span were emitted at capture time).
fn finish_run(
    cfg: &AppRunConfig,
    mut heap: Heap,
    mut mem: MemorySystem,
    mut mutator: Mutator,
    first_step: MutatorStep,
) -> Result<AppRunResult, RunError> {
    let active_faults = fault_names(&cfg.gc.fault);
    let fail = |phase: RunPhase, cycle: usize, failure: RunFailure| RunError {
        workload: cfg.spec.name.to_owned(),
        phase,
        cycle,
        active_faults: active_faults.clone(),
        failure,
    };
    let verify_runs = !cfg.gc.fault.is_empty();
    let threads = cfg.gc.threads.max(1);

    let mut gc = G1Collector::new(cfg.gc.clone());
    let mut cycles: Vec<GcStats> = Vec::new();
    let mut pause_intervals = Vec::new();
    let mut pause_spans: Vec<PauseSpan> = Vec::new();
    let mut mixed_cycles = 0usize;
    let mut peak_old_regions = 0usize;
    let mut digest_checks = 0usize;
    let mut gc_log = GcLog::new();
    let mut phase_start = mutator.clock;
    // Guard against a futile-collection livelock: if the live set grows to
    // fill the heap, every mutator step demands a GC that reclaims nothing.
    // Bail out with a typed error after this many zero-progress cycles.
    const FUTILE_GC_LIMIT: usize = 8;
    let mut futile_cycles = 0usize;
    let mut bytes_at_last_gc = u64::MAX;
    let mut pending_step = Some(first_step);
    // Scratch attribution timers (NVMGC_CELL_TIMES=1): wall seconds in
    // the mutator phase, GC phase and verifier per run.
    let prof = std::env::var("NVMGC_CELL_TIMES")
        .map(|v| v == "1")
        .unwrap_or(false);
    let mut t_mut = std::time::Duration::ZERO;
    let mut t_gc = std::time::Duration::ZERO;
    let mut t_verify = std::time::Duration::ZERO;

    loop {
        let step = match pending_step.take() {
            Some(step) => step,
            None => {
                let t0 = std::time::Instant::now();
                let step = mutator.run(&mut heap, &mut mem).map_err(|e| {
                    fail(
                        RunPhase::Mutator,
                        cycles.len(),
                        RunFailure::Gc(GcError::Heap(e)),
                    )
                })?;
                t_mut += t0.elapsed();
                let gc_start = mutator.clock;
                mem.sampler_mut()
                    .mark_phase(phase_start, gc_start, PhaseKind::Mutator);
                // The mutator runs on the lane one past the GC workers.
                mem.trace_mut().span(
                    "mutator",
                    TraceCat::Mutator,
                    threads as u32,
                    phase_start,
                    gc_start,
                    cycles.len() as u64,
                );
                step
            }
        };
        let gc_start = mutator.clock;
        match step {
            MutatorStep::Done => {
                if prof {
                    let s = mem.stats();
                    let ops: u64 = s.reads.iter().sum::<u64>() + s.writes.iter().sum::<u64>();
                    eprintln!(
                        "  phases: mutator {:>7.3}s  gc {:>7.3}s  verify {:>7.3}s  allocs {}  memops {}  ({})",
                        t_mut.as_secs_f64(),
                        t_gc.as_secs_f64(),
                        t_verify.as_secs_f64(),
                        mutator.allocated_objects(),
                        ops,
                        cfg.spec.name
                    );
                }
                break;
            }
            MutatorStep::NeedsGc => {
                let cycle = cycles.len();
                if mutator.allocated_bytes() == bytes_at_last_gc {
                    futile_cycles += 1;
                    if futile_cycles >= FUTILE_GC_LIMIT {
                        return Err(fail(
                            RunPhase::Gc,
                            cycle,
                            RunFailure::HeapExhausted { futile_cycles },
                        ));
                    }
                } else {
                    futile_cycles = 0;
                    bytes_at_last_gc = mutator.allocated_bytes();
                }
                let old_frac = (heap.old().len() + heap.humongous().len()) as f64
                    / cfg.heap.heap_regions as f64;
                let mixed = matches!(cfg.trigger, GcTrigger::Adaptive { ihop } if old_frac > ihop);
                let occupied = |h: &Heap| -> u64 {
                    (h.eden().len() + h.survivor().len() + h.old().len()) as u64
                        * h.config().region_size as u64
                };
                let before_bytes = occupied(&heap);
                let tv = std::time::Instant::now();
                let before_digest = if verify_runs {
                    Some(
                        verify_heap(&heap, &mutator.roots)
                            .map_err(|e| fail(RunPhase::Verify, cycle, RunFailure::Verify(e)))?,
                    )
                } else {
                    None
                };
                t_verify += tv.elapsed();
                let tg = std::time::Instant::now();
                let mut attempt = if mixed {
                    mixed_cycles += 1;
                    gc.collect_mixed(&mut heap, &mut mem, &mut mutator.roots, gc_start)
                } else {
                    gc.collect(&mut heap, &mut mem, &mut mutator.roots, gc_start)
                };
                // A durable-map power failure is recoverable, not fatal:
                // replay the crash image's durable prefix and finish the
                // interrupted evacuation. A second power failure during
                // the resumed cycle loops around again. The post-cycle
                // digest check below then proves the recovered graph
                // identical to a never-crashed run.
                let outcome = loop {
                    match attempt {
                        Err(GcError::PowerCrash(crash)) => {
                            attempt = gc.recover_from_crash(
                                &mut heap,
                                &mut mem,
                                &mut mutator.roots,
                                *crash,
                            );
                        }
                        other => break other,
                    }
                }
                .map_err(|e| fail(RunPhase::Gc, cycle, RunFailure::Gc(e)))?;
                t_gc += tg.elapsed();
                let tv = std::time::Instant::now();
                if let Some(before) = before_digest {
                    let after = verify_heap(&heap, &mutator.roots)
                        .map_err(|e| fail(RunPhase::Verify, cycle, RunFailure::Verify(e)))?;
                    if after != before {
                        return Err(fail(
                            RunPhase::Verify,
                            cycle,
                            RunFailure::DigestMismatch { before, after },
                        ));
                    }
                    digest_checks += 1;
                }
                t_verify += tv.elapsed();
                if cfg.keep_gc_log {
                    let kind = if mixed { GcKind::Mixed } else { GcKind::Young };
                    gc_log.record(
                        kind,
                        gc_start,
                        &outcome.stats,
                        before_bytes,
                        occupied(&heap),
                    );
                }
                peak_old_regions = peak_old_regions.max(heap.old().len());
                pause_intervals.push((gc_start, outcome.end_ns));
                pause_spans.push(PauseSpan {
                    start_ns: gc_start,
                    end_ns: outcome.end_ns,
                    mixed,
                    recovered: outcome.stats.recovered_cycles > 0,
                });
                cycles.push(outcome.stats);
                mutator.on_gc_complete(outcome.end_ns);
                phase_start = outcome.end_ns;
            }
        }
    }

    let total_ns = mutator.clock;
    let gc_ns = gc.run_stats.total_pause_ns();
    let mutator_ns = mutator_time(total_ns, gc_ns)
        .map_err(|failure| fail(RunPhase::Gc, cycles.len(), failure))?;
    // Outside the simulation (charges nothing): the final reachable-graph
    // digest, for cross-run comparisons.
    let final_digest = verify_heap(&heap, &mutator.roots)
        .map_err(|e| fail(RunPhase::Verify, cycles.len(), RunFailure::Verify(e)))?;
    let final_free_regions = heap.allocator().free_stack().to_vec();
    let final_region_kinds = (0..heap.config().heap_regions)
        .map(|r| heap.allocator().lower(r).kind)
        .collect();
    let sampler = mem.sampler();
    let gc_nvm_bandwidth = sampler.phase_bandwidth(DeviceId::Nvm, PhaseKind::Gc);
    let app_nvm_bandwidth = sampler.phase_bandwidth(DeviceId::Nvm, PhaseKind::Mutator);
    let to_pairs = |dev: DeviceId| -> Vec<(u64, u64)> {
        sampler
            .series(dev)
            .iter()
            .map(|s| (s.read_bytes, s.write_bytes))
            .collect()
    };
    let nvm_series = to_pairs(DeviceId::Nvm);
    let dram_series = to_pairs(DeviceId::Dram);
    let bin_ns = sampler.bin_ns();

    Ok(AppRunResult {
        name: cfg.spec.name.to_owned(),
        total_ns,
        mutator_ns,
        gc: gc.run_stats.clone(),
        cycles,
        gc_nvm_bandwidth,
        app_nvm_bandwidth,
        mem_stats: mem.stats(),
        nvm_series,
        dram_series,
        bin_ns,
        pause_intervals,
        pause_spans,
        mixed_cycles,
        gc_log,
        trace: mem.trace_mut().take_sorted(),
        peak_old_regions,
        allocated_objects: mutator.allocated_objects(),
        digest_checks,
        final_digest,
        final_free_regions,
        final_region_kinds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ClassMix;

    fn small_spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "runner-unit",
            alloc_young_multiple: 3.0,
            mix: vec![ClassMix {
                num_refs: 2,
                data_bytes: 24,
                weight: 1,
            }],
            survival: 0.4,
            keep_gcs: 1,
            old_link_fraction: 0.1,
            chain_fraction: 0.0,
            cpu_per_alloc_ns: 20.0,
            touches_per_alloc: 1,
            app_threads: 4,
            share_fraction: 0.15,
            old_anchor_bytes: 8 << 10,
        }
    }

    fn small_cfg(gc: GcConfig) -> AppRunConfig {
        let mut cfg = AppRunConfig::standard(small_spec(), gc);
        cfg.heap.region_size = 16 << 10;
        cfg.heap.heap_regions = 96;
        cfg.heap.young_regions = 32;
        cfg
    }

    #[test]
    fn oversubscribed_live_set_errors_instead_of_looping() {
        // A live set (anchors + long-retained survivors) that outgrows the
        // heap used to spin forever in a futile GC loop; it must instead
        // surface a typed error promptly.
        let mut spec = small_spec();
        spec.survival = 0.95;
        spec.keep_gcs = 4;
        spec.alloc_young_multiple = 20.0;
        spec.old_anchor_bytes = 600 << 10;
        let mut cfg = AppRunConfig::standard(spec, GcConfig::vanilla(4));
        cfg.heap.region_size = 16 << 10;
        cfg.heap.heap_regions = 96;
        cfg.heap.young_regions = 32;
        let err = run_app(&cfg).expect_err("live set cannot fit this heap");
        assert!(
            matches!(
                err.failure,
                RunFailure::HeapExhausted { .. }
                    | RunFailure::Gc(GcError::Heap(nvmgc_heap::HeapError::OutOfRegions))
            ),
            "unexpected failure: {err}"
        );
    }

    #[test]
    fn mutator_time_is_a_checked_subtraction() {
        // Pinned regression: `mutator_ns` was `total_ns.saturating_sub(gc_ns)`,
        // so GC time exceeding total time — impossible unless pause
        // accounting is corrupt — clamped silently to zero instead of
        // surfacing. It is now a typed failure carrying both operands.
        assert_eq!(mutator_time(100, 30), Ok(70));
        assert_eq!(mutator_time(30, 30), Ok(0));
        let err = mutator_time(30, 100).expect_err("gc > total must not clamp");
        assert_eq!(
            err,
            RunFailure::PauseExceedsTotal {
                total_ns: 30,
                gc_ns: 100
            }
        );
        assert!(err.to_string().contains("exceeds total simulated run time"));
    }

    #[test]
    fn run_completes_with_multiple_gcs() {
        let r = run_app(&small_cfg(GcConfig::vanilla(4))).unwrap();
        assert!(
            r.gc.cycles() >= 2,
            "expected several GCs, got {}",
            r.gc.cycles()
        );
        assert!(r.total_ns > 0);
        assert!(r.mutator_ns > 0);
        assert!(r.mutator_ns < r.total_ns);
        assert_eq!(r.pause_intervals.len(), r.gc.cycles());
        assert!(r.allocated_objects > 1000);
        // The typed spans mirror the raw intervals exactly; a young-only
        // trigger with no fault plan produces only young pauses.
        assert_eq!(r.pause_spans.len(), r.pause_intervals.len());
        for (span, &(start, end)) in r.pause_spans.iter().zip(&r.pause_intervals) {
            assert_eq!((span.start_ns, span.end_ns), (start, end));
            assert_eq!(span.kind(), "gc-young");
            assert!(span.duration_ns() > 0);
        }
    }

    #[test]
    fn optimized_config_also_completes() {
        let mut cfg = small_cfg(GcConfig::plus_all(8, 1 << 20));
        cfg.sample_series = true;
        let r = run_app(&cfg).unwrap();
        assert!(r.gc.cycles() >= 2);
        assert!(r.gc_nvm_bandwidth.0 > 0.0, "GC reads NVM");
        assert!(!r.nvm_series.is_empty());
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_app(&small_cfg(GcConfig::vanilla(4))).unwrap();
        let b = run_app(&small_cfg(GcConfig::vanilla(4))).unwrap();
        assert_eq!(a.total_ns, b.total_ns);
        assert_eq!(a.gc.pauses_ns, b.gc.pauses_ns);
        assert_eq!(a.allocated_objects, b.allocated_objects);
    }

    #[test]
    fn dram_placement_is_faster_than_nvm() {
        let nvm = run_app(&small_cfg(GcConfig::vanilla(4))).unwrap();
        let mut cfg = small_cfg(GcConfig::vanilla(4));
        cfg.heap.placement = DevicePlacement::all_dram();
        let dram = run_app(&cfg).unwrap();
        assert!(
            nvm.gc.total_pause_ns() > dram.gc.total_pause_ns(),
            "GC on NVM must be slower: nvm={} dram={}",
            nvm.gc.total_pause_ns(),
            dram.gc.total_pause_ns()
        );
        assert!(nvm.total_ns > dram.total_ns);
    }
}
