//! Application run orchestration.
//!
//! Runs one workload to completion against a collector configuration:
//! mutator phases alternate with stop-the-world young collections, phase
//! intervals are marked in the traffic sampler, and the result carries
//! everything the experiment harnesses report — application time, GC
//! pauses, per-phase bandwidth and raw memory-model counters.

use crate::mutator::{Mutator, MutatorStep};
use crate::spec::WorkloadSpec;
use nvmgc_core::gclog::{GcKind, GcLog};
use nvmgc_core::{G1Collector, GcConfig, GcStats};
use nvmgc_core::stats::RunGcStats;
use nvmgc_heap::{DevicePlacement, Heap, HeapConfig, HeapError};
use nvmgc_memsim::{DeviceId, MemConfig, MemStats, MemorySystem, Ns, PhaseKind};

/// When collections beyond young GCs are triggered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GcTrigger {
    /// Young collections only — the paper's evaluated mode (its workloads
    /// never triggered a full GC and mixed GCs were rare, §2.1).
    YoungOnly,
    /// G1-like adaptive mode: a mixed collection replaces the young one
    /// whenever old-generation occupancy exceeds the threshold fraction
    /// of the heap (the initiating-heap-occupancy idea).
    Adaptive {
        /// Old-occupancy fraction of the heap that initiates mixed GCs.
        ihop: f64,
    },
}

/// Configuration of one application run.
#[derive(Debug, Clone)]
pub struct AppRunConfig {
    /// The workload.
    pub spec: WorkloadSpec,
    /// Collector configuration.
    pub gc: GcConfig,
    /// Heap geometry and placement.
    pub heap: HeapConfig,
    /// Memory-system configuration.
    pub mem: MemConfig,
    /// Workload RNG seed.
    pub seed: u64,
    /// Collection-triggering policy.
    pub trigger: GcTrigger,
    /// Keep a HotSpot-style GC log for the run.
    pub keep_gc_log: bool,
    /// Record full bandwidth time series (costs memory; timeline figures
    /// only).
    pub sample_series: bool,
}

impl AppRunConfig {
    /// A standard scaled-down run: 64 KiB regions, 48 MiB heap with an
    /// 8 MiB young generation, 512 KiB LLC, everything on NVM. The old
    /// space is generous because this reproduction (like the paper's
    /// evaluation) only runs young collections — promoted garbage is
    /// reclaimed by mixed GCs in real G1, which are out of scope.
    pub fn standard(spec: WorkloadSpec, gc: GcConfig) -> AppRunConfig {
        AppRunConfig {
            spec,
            gc,
            heap: HeapConfig {
                region_size: 64 << 10,
                heap_regions: 768,
                young_regions: 128,
                placement: DevicePlacement::all_nvm(),
                card_table: false,
            },
            mem: MemConfig {
                llc_bytes: 512 << 10,
                ..MemConfig::default()
            },
            seed: 0x5EED,
            trigger: GcTrigger::YoungOnly,
            keep_gc_log: false,
            sample_series: false,
        }
    }

    /// Young-generation size in bytes.
    pub fn young_bytes(&self) -> u64 {
        self.heap.young_regions as u64 * self.heap.region_size as u64
    }

    /// Heap size in bytes (for sizing the write cache / header map like
    /// the paper: 1/32 of the heap each).
    pub fn heap_bytes(&self) -> u64 {
        self.heap.heap_regions as u64 * self.heap.region_size as u64
    }
}

/// The measurements from one application run.
#[derive(Debug)]
pub struct AppRunResult {
    /// Workload name.
    pub name: String,
    /// Total simulated run time (mutator + GC pauses).
    pub total_ns: Ns,
    /// Simulated time spent in mutator phases (excludes pauses).
    pub mutator_ns: Ns,
    /// Accumulated GC statistics.
    pub gc: RunGcStats,
    /// Per-cycle statistics.
    pub cycles: Vec<GcStats>,
    /// Average NVM (read, write) bandwidth during GC pauses, MB/s.
    pub gc_nvm_bandwidth: (f64, f64),
    /// Average NVM (read, write) bandwidth during mutator phases, MB/s.
    pub app_nvm_bandwidth: (f64, f64),
    /// Raw memory-model counters.
    pub mem_stats: MemStats,
    /// Raw per-bin NVM (read, write) byte series (when sampling enabled).
    pub nvm_series: Vec<(u64, u64)>,
    /// Raw per-bin DRAM (read, write) byte series (when sampling enabled).
    pub dram_series: Vec<(u64, u64)>,
    /// Sampler bin width, ns.
    pub bin_ns: Ns,
    /// GC pause intervals `(start, end)` in simulated time.
    pub pause_intervals: Vec<(Ns, Ns)>,
    /// How many of the cycles were mixed collections.
    pub mixed_cycles: usize,
    /// The HotSpot-style GC log (empty unless requested).
    pub gc_log: GcLog,
    /// Peak old-generation footprint in regions.
    pub peak_old_regions: usize,
    /// Objects the mutator allocated.
    pub allocated_objects: u64,
}

impl AppRunResult {
    /// Accumulated GC time in seconds.
    pub fn gc_seconds(&self) -> f64 {
        self.gc.total_pause_ns() as f64 / 1e9
    }

    /// Total run time in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.total_ns as f64 / 1e9
    }

    /// Mutator (non-GC) time in seconds.
    pub fn mutator_seconds(&self) -> f64 {
        self.mutator_ns as f64 / 1e9
    }

    /// Fraction of run time spent paused for GC.
    pub fn gc_share(&self) -> f64 {
        if self.total_ns == 0 {
            0.0
        } else {
            self.gc.total_pause_ns() as f64 / self.total_ns as f64
        }
    }
}

/// Runs one application to completion.
///
/// The memory model assigns thread ids `0..gc.threads` to GC workers and
/// `gc.threads` to the mutator.
pub fn run_app(cfg: &AppRunConfig) -> Result<AppRunResult, HeapError> {
    let mut heap = Heap::new(cfg.heap.clone(), cfg.spec.build_classes());
    let mut mem = MemorySystem::new(cfg.mem.clone());
    let threads = cfg.gc.threads.max(1);
    mem.set_threads(threads + 1);
    mem.sampler_mut().set_enabled(cfg.sample_series);

    let mut mutator = Mutator::new(cfg.spec.clone(), cfg.seed, threads, cfg.young_bytes());
    mutator.setup(&mut heap, &mut mem)?;

    let mut gc = G1Collector::new(cfg.gc.clone());
    let mut cycles = Vec::new();
    let mut pause_intervals = Vec::new();
    let mut mixed_cycles = 0usize;
    let mut peak_old_regions = 0usize;
    let mut gc_log = GcLog::new();
    let mut phase_start = mutator.clock;

    loop {
        let step = mutator.run(&mut heap, &mut mem)?;
        let gc_start = mutator.clock;
        mem.sampler_mut()
            .mark_phase(phase_start, gc_start, PhaseKind::Mutator);
        match step {
            MutatorStep::Done => break,
            MutatorStep::NeedsGc => {
                let old_frac = (heap.old().len() + heap.humongous().len()) as f64
                    / cfg.heap.heap_regions as f64;
                let mixed = matches!(cfg.trigger, GcTrigger::Adaptive { ihop } if old_frac > ihop);
                let occupied = |h: &Heap| -> u64 {
                    (h.eden().len() + h.survivor().len() + h.old().len()) as u64
                        * h.config().region_size as u64
                };
                let before_bytes = occupied(&heap);
                let outcome = if mixed {
                    mixed_cycles += 1;
                    gc.collect_mixed(&mut heap, &mut mem, &mut mutator.roots, gc_start)?
                } else {
                    gc.collect(&mut heap, &mut mem, &mut mutator.roots, gc_start)?
                };
                if cfg.keep_gc_log {
                    let kind = if mixed { GcKind::Mixed } else { GcKind::Young };
                    gc_log.record(kind, gc_start, &outcome.stats, before_bytes, occupied(&heap));
                }
                peak_old_regions = peak_old_regions.max(heap.old().len());
                pause_intervals.push((gc_start, outcome.end_ns));
                cycles.push(outcome.stats);
                mutator.on_gc_complete(outcome.end_ns);
                phase_start = outcome.end_ns;
            }
        }
    }

    let total_ns = mutator.clock;
    let gc_ns = gc.run_stats.total_pause_ns();
    let sampler = mem.sampler();
    let gc_nvm_bandwidth = sampler.phase_bandwidth(DeviceId::Nvm, PhaseKind::Gc);
    let app_nvm_bandwidth = sampler.phase_bandwidth(DeviceId::Nvm, PhaseKind::Mutator);
    let to_pairs = |dev: DeviceId| -> Vec<(u64, u64)> {
        sampler
            .series(dev)
            .iter()
            .map(|s| (s.read_bytes, s.write_bytes))
            .collect()
    };
    let nvm_series = to_pairs(DeviceId::Nvm);
    let dram_series = to_pairs(DeviceId::Dram);
    let bin_ns = sampler.bin_ns();

    Ok(AppRunResult {
        name: cfg.spec.name.to_owned(),
        total_ns,
        mutator_ns: total_ns.saturating_sub(gc_ns),
        gc: gc.run_stats.clone(),
        cycles,
        gc_nvm_bandwidth,
        app_nvm_bandwidth,
        mem_stats: mem.stats(),
        nvm_series,
        dram_series,
        bin_ns,
        pause_intervals,
        mixed_cycles,
        gc_log,
        peak_old_regions,
        allocated_objects: mutator.allocated_objects(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ClassMix;

    fn small_spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "runner-unit",
            alloc_young_multiple: 3.0,
            mix: vec![ClassMix {
                num_refs: 2,
                data_bytes: 24,
                weight: 1,
            }],
            survival: 0.4,
            keep_gcs: 1,
            old_link_fraction: 0.1,
            chain_fraction: 0.0,
            cpu_per_alloc_ns: 20.0,
            touches_per_alloc: 1,
            app_threads: 4,
            share_fraction: 0.15,
            old_anchor_bytes: 8 << 10,
        }
    }

    fn small_cfg(gc: GcConfig) -> AppRunConfig {
        let mut cfg = AppRunConfig::standard(small_spec(), gc);
        cfg.heap.region_size = 16 << 10;
        cfg.heap.heap_regions = 96;
        cfg.heap.young_regions = 32;
        cfg
    }

    #[test]
    fn run_completes_with_multiple_gcs() {
        let r = run_app(&small_cfg(GcConfig::vanilla(4))).unwrap();
        assert!(r.gc.cycles() >= 2, "expected several GCs, got {}", r.gc.cycles());
        assert!(r.total_ns > 0);
        assert!(r.mutator_ns > 0);
        assert!(r.mutator_ns < r.total_ns);
        assert_eq!(r.pause_intervals.len(), r.gc.cycles());
        assert!(r.allocated_objects > 1000);
    }

    #[test]
    fn optimized_config_also_completes() {
        let mut cfg = small_cfg(GcConfig::plus_all(8, 1 << 20));
        cfg.sample_series = true;
        let r = run_app(&cfg).unwrap();
        assert!(r.gc.cycles() >= 2);
        assert!(r.gc_nvm_bandwidth.0 > 0.0, "GC reads NVM");
        assert!(!r.nvm_series.is_empty());
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_app(&small_cfg(GcConfig::vanilla(4))).unwrap();
        let b = run_app(&small_cfg(GcConfig::vanilla(4))).unwrap();
        assert_eq!(a.total_ns, b.total_ns);
        assert_eq!(a.gc.pauses_ns, b.gc.pauses_ns);
        assert_eq!(a.allocated_objects, b.allocated_objects);
    }

    #[test]
    fn dram_placement_is_faster_than_nvm() {
        let nvm = run_app(&small_cfg(GcConfig::vanilla(4))).unwrap();
        let mut cfg = small_cfg(GcConfig::vanilla(4));
        cfg.heap.placement = DevicePlacement::all_dram();
        let dram = run_app(&cfg).unwrap();
        assert!(
            nvm.gc.total_pause_ns() > dram.gc.total_pause_ns(),
            "GC on NVM must be slower: nvm={} dram={}",
            nvm.gc.total_pause_ns(),
            dram.gc.total_pause_ns()
        );
        assert!(nvm.total_ns > dram.total_ns);
    }
}
