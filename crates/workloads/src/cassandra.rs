//! The Cassandra-like tail-latency workload (paper §5.1, §5.4, Fig. 8).
//!
//! The paper runs `cassandra-stress` against a Cassandra server and plots
//! p95/p99 latency against offered throughput for a write-only and a
//! read-only phase. The dominant GC effect on tail latency is simple:
//! requests that arrive during (or queue behind) a stop-the-world pause
//! wait for it. This module reproduces that mechanism:
//!
//! 1. a server workload (memtable-like allocation pattern) runs under a
//!    collector configuration, yielding a *pause schedule* over simulated
//!    time;
//! 2. an open-loop client generates Poisson arrivals at a target
//!    throughput; a single logical server executes requests FIFO with a
//!    per-request service time, pausing wherever the schedule says the
//!    JVM was stopped;
//! 3. p95/p99 latencies come from the simulated request completions.

use crate::spec::{ClassMix, WorkloadSpec};
use nvmgc_memsim::Ns;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Which cassandra-stress phase to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CassandraPhase {
    /// Insert-only load (larger allocations, higher survival).
    Write,
    /// Read-only load.
    Read,
}

/// The server-side allocation profile for a phase.
pub fn server_spec(phase: CassandraPhase) -> WorkloadSpec {
    match phase {
        CassandraPhase::Write => WorkloadSpec {
            name: "cassandra-write",
            alloc_young_multiple: 12.0,
            // Mutation objects, commit-log buffers, memtable entries.
            mix: vec![
                ClassMix {
                    num_refs: 2,
                    data_bytes: 128,
                    weight: 40,
                },
                ClassMix {
                    num_refs: 1,
                    data_bytes: 512,
                    weight: 25,
                },
                ClassMix {
                    num_refs: 3,
                    data_bytes: 32,
                    weight: 35,
                },
            ],
            survival: 0.45,
            keep_gcs: 2,
            old_link_fraction: 0.3,
            chain_fraction: 0.0,
            cpu_per_alloc_ns: 24.0,
            touches_per_alloc: 5,
            app_threads: 16,
            share_fraction: 0.15,
            old_anchor_bytes: 512 << 10,
        },
        CassandraPhase::Read => WorkloadSpec {
            name: "cassandra-read",
            alloc_young_multiple: 10.0,
            // Response buffers and iterators: shorter-lived, smaller.
            mix: vec![
                ClassMix {
                    num_refs: 1,
                    data_bytes: 256,
                    weight: 40,
                },
                ClassMix {
                    num_refs: 2,
                    data_bytes: 48,
                    weight: 40,
                },
                ClassMix {
                    num_refs: 1,
                    data_bytes: 24,
                    weight: 20,
                },
            ],
            survival: 0.25,
            keep_gcs: 1,
            old_link_fraction: 0.12,
            chain_fraction: 0.0,
            cpu_per_alloc_ns: 26.0,
            touches_per_alloc: 6,
            app_threads: 16,
            share_fraction: 0.1,
            old_anchor_bytes: 512 << 10,
        },
    }
}

/// Latency percentiles from one client simulation.
#[derive(Debug, Clone, Copy)]
pub struct LatencyResult {
    /// Offered load in requests per second.
    pub throughput_rps: f64,
    /// 95th-percentile latency, ms.
    pub p95_ms: f64,
    /// 99th-percentile latency, ms.
    pub p99_ms: f64,
    /// Mean latency, ms.
    pub mean_ms: f64,
}

/// Simulates an open-loop client against a pause schedule.
///
/// `pauses` are half-open `(start, end)` STW intervals in simulated time;
/// `horizon_ns` is the span to generate arrivals over; `service_ns` is the
/// per-request service time; `throughput_rps` the Poisson arrival rate.
pub fn simulate_client(
    pauses: &[(Ns, Ns)],
    horizon_ns: Ns,
    service_ns: f64,
    throughput_rps: f64,
    seed: u64,
) -> LatencyResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let mean_gap_ns = 1e9 / throughput_rps;
    let mut arrivals: Vec<Ns> = Vec::new();
    let mut t = 0f64;
    loop {
        // Exponential inter-arrival times.
        let u: f64 = rng.random();
        t += -mean_gap_ns * (1.0 - u).ln();
        if t >= horizon_ns as f64 {
            break;
        }
        arrivals.push(t as Ns);
    }

    // Single FIFO server that stalls during pauses.
    let mut server_free: Ns = 0;
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(arrivals.len());
    let mut pause_idx = 0;
    for &arr in &arrivals {
        let mut start = server_free.max(arr);
        // Service cannot start (or make progress) inside a pause; model a
        // request overlapping a pause as delayed to the pause end.
        while pause_idx < pauses.len() && pauses[pause_idx].1 <= start {
            pause_idx += 1;
        }
        let mut k = pause_idx;
        while k < pauses.len() && pauses[k].0 < start + service_ns as Ns {
            if start < pauses[k].1 {
                start = pauses[k].1;
            }
            k += 1;
        }
        let done = start + service_ns as Ns;
        server_free = done;
        latencies_ms.push((done - arr) as f64 / 1e6);
    }

    LatencyResult {
        throughput_rps,
        p95_ms: percentile(&mut latencies_ms.clone(), 95.0),
        p99_ms: percentile(&mut latencies_ms.clone(), 99.0),
        mean_ms: latencies_ms.iter().sum::<f64>() / latencies_ms.len().max(1) as f64,
    }
}

fn percentile(xs: &mut [f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN latencies"));
    let rank = (p / 100.0) * (xs.len() - 1) as f64;
    xs[rank.round() as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_differ_by_phase() {
        let w = server_spec(CassandraPhase::Write);
        let r = server_spec(CassandraPhase::Read);
        assert!(w.survival > r.survival);
        assert_ne!(w.name, r.name);
    }

    #[test]
    fn no_pauses_means_low_flat_latency() {
        let r = simulate_client(&[], 1_000_000_000, 20_000.0, 5_000.0, 1);
        assert!(r.p99_ms < 1.0, "p99 {} ms", r.p99_ms);
        assert!(r.mean_ms >= 0.02);
    }

    #[test]
    fn pauses_inflate_tail_latency() {
        // One 50 ms pause in a 1 s horizon.
        let pauses = [(400_000_000u64, 450_000_000u64)];
        let with = simulate_client(&pauses, 1_000_000_000, 20_000.0, 5_000.0, 1);
        let without = simulate_client(&[], 1_000_000_000, 20_000.0, 5_000.0, 1);
        assert!(
            with.p99_ms > 10.0 * without.p99_ms,
            "with {} vs without {}",
            with.p99_ms,
            without.p99_ms
        );
    }

    #[test]
    fn longer_pauses_hurt_more() {
        let short = [(100_000_000u64, 110_000_000u64)];
        let long = [(100_000_000u64, 180_000_000u64)];
        let a = simulate_client(&short, 1_000_000_000, 20_000.0, 8_000.0, 2);
        let b = simulate_client(&long, 1_000_000_000, 20_000.0, 8_000.0, 2);
        assert!(b.p99_ms > a.p99_ms);
    }

    #[test]
    fn saturation_raises_latency_with_throughput() {
        let lo = simulate_client(&[], 500_000_000, 50_000.0, 2_000.0, 3);
        // Offered load close to service capacity (1/50µs = 20k rps).
        let hi = simulate_client(&[], 500_000_000, 50_000.0, 19_000.0, 3);
        assert!(hi.p99_ms > lo.p99_ms);
    }

    #[test]
    fn pauses_after_the_horizon_are_ignored() {
        let pauses = [(2_000_000_000u64, 2_100_000_000u64)];
        let with = simulate_client(&pauses, 1_000_000_000, 20_000.0, 5_000.0, 4);
        let without = simulate_client(&[], 1_000_000_000, 20_000.0, 5_000.0, 4);
        assert_eq!(with.p99_ms, without.p99_ms);
    }

    #[test]
    fn back_to_back_pauses_compound() {
        let one = [(100_000_000u64, 150_000_000u64)];
        let two = [
            (100_000_000u64, 150_000_000u64),
            (150_000_000u64, 200_000_000u64),
        ];
        let a = simulate_client(&one, 1_000_000_000, 20_000.0, 8_000.0, 5);
        let b = simulate_client(&two, 1_000_000_000, 20_000.0, 8_000.0, 5);
        assert!(b.p99_ms > a.p99_ms);
        assert!(b.mean_ms > a.mean_ms);
    }

    #[test]
    fn deterministic_for_seed() {
        let pauses = [(1_000_000u64, 2_000_000u64)];
        let a = simulate_client(&pauses, 100_000_000, 10_000.0, 5_000.0, 9);
        let b = simulate_client(&pauses, 100_000_000, 10_000.0, 5_000.0, 9);
        assert_eq!(a.p99_ms, b.p99_ms);
    }
}
