//! Open-loop million-client latency scenarios.
//!
//! [`cassandra`](crate::cassandra) models one open-loop client at a fixed
//! Poisson rate; this module scales the same mechanism to *client
//! cohorts*: a seeded population of `clients` open-loop issuers whose
//! aggregate arrival stream is charged in micro-batches — one FIFO queue
//! operation and one [`HdrHistogram::record_n`] per `batch` requests,
//! the client-side analog of the simulator's `charge_bulk`. One run
//! therefore simulates millions of clients at the cost of thousands of
//! queue steps, deterministically.
//!
//! A [`ScenarioSpec`] shapes the load over the server run's horizon:
//!
//! - **steady** — flat arrivals at the base rate;
//! - **diurnal** — a piecewise-linear day curve (trough ×0.3 to peak
//!   ×1.35 of base);
//! - **flash-crowd** — ×8 arrival burst over 10% of the horizon,
//!   saturating the server even with no GC pause in sight;
//! - **hot-key** — a seeded 20% of batches hit a hot key and cost ×4
//!   service;
//! - **slow-consumer** — periodic downstream backpressure triples
//!   service time for a quarter of each period.
//!
//! Every multiplier is piecewise-linear or a seeded
//! [`splitmix64`] draw — no transcendental math — so results are
//! byte-identical across hosts.
//!
//! Latencies that exceed the SLO are folded into *violation windows*
//! (consecutive violating batches merged), and each window is attributed
//! to the concurrent server-side activity: overlapping GC
//! [`PauseSpan`]s, injected-fault windows and persistence-fence instants
//! from the trace layer. The scenario-matrix gate requires at least one
//! GC-attributed window — the paper's Fig. 8 tail-latency story, made
//! checkable.

use nvmgc_core::stats::PauseSpan;
use nvmgc_memsim::fault::splitmix64;
use nvmgc_memsim::{Ns, TraceCat, TraceEvent};
use nvmgc_metrics::hdr::{HdrHistogram, LatencyQuantiles};
use serde::Serialize;

/// The load shapes the suite sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Flat arrivals at the base rate.
    Steady,
    /// Piecewise-linear day curve: overnight trough to evening peak.
    Diurnal,
    /// A burst multiplies arrivals ×8 over 10% of the horizon.
    FlashCrowd,
    /// A seeded 20% of batches hit a hot key costing ×4 service time.
    HotKeySkew,
    /// Periodic downstream backpressure triples service time for a
    /// quarter of each of five periods.
    SlowConsumer,
}

impl ScenarioKind {
    /// Canonical label used in cell names and result files.
    pub fn label(&self) -> &'static str {
        match self {
            ScenarioKind::Steady => "steady",
            ScenarioKind::Diurnal => "diurnal",
            ScenarioKind::FlashCrowd => "flash-crowd",
            ScenarioKind::HotKeySkew => "hot-key",
            ScenarioKind::SlowConsumer => "slow-consumer",
        }
    }

    /// All scenario kinds, in sweep order.
    pub fn all() -> [ScenarioKind; 5] {
        [
            ScenarioKind::Steady,
            ScenarioKind::Diurnal,
            ScenarioKind::FlashCrowd,
            ScenarioKind::HotKeySkew,
            ScenarioKind::SlowConsumer,
        ]
    }

    /// Arrival-rate multiplier at normalized time `x ∈ [0, 1]`.
    fn arrival_multiplier(&self, x: f64) -> f64 {
        match self {
            ScenarioKind::Steady | ScenarioKind::HotKeySkew | ScenarioKind::SlowConsumer => 1.0,
            ScenarioKind::Diurnal => piecewise(DIURNAL_CURVE, x),
            ScenarioKind::FlashCrowd => {
                if (0.30..0.40).contains(&x) {
                    8.0
                } else {
                    1.0
                }
            }
        }
    }

    /// Service-time multiplier for a batch arriving at normalized time
    /// `x`, with `draw ∈ [0, 1)` the batch's seeded uniform.
    fn service_multiplier(&self, x: f64, draw: f64) -> f64 {
        match self {
            ScenarioKind::Steady | ScenarioKind::Diurnal | ScenarioKind::FlashCrowd => 1.0,
            ScenarioKind::HotKeySkew => {
                if draw < 0.20 {
                    4.0
                } else {
                    1.0
                }
            }
            ScenarioKind::SlowConsumer => {
                // Five backpressure periods across the horizon; service
                // triples during the first quarter of each.
                let phase = x * 5.0;
                if phase - phase.floor() < 0.25 {
                    3.0
                } else {
                    1.0
                }
            }
        }
    }
}

/// The diurnal day curve as `(x, multiplier)` knots: overnight trough,
/// morning ramp, evening peak, late-night fall. Piecewise-linear so the
/// evaluation uses only IEEE `+ - * /`.
const DIURNAL_CURVE: &[(f64, f64)] = &[
    (0.0, 0.45),
    (0.125, 0.30),
    (0.25, 0.50),
    (0.375, 0.90),
    (0.5, 1.20),
    (0.625, 1.35),
    (0.75, 1.10),
    (0.875, 0.70),
    (1.0, 0.45),
];

/// Linear interpolation over sorted `(x, y)` knots, clamped at the ends.
fn piecewise(knots: &[(f64, f64)], x: f64) -> f64 {
    if x <= knots[0].0 {
        return knots[0].1;
    }
    for w in knots.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        if x <= x1 {
            return y0 + (y1 - y0) * (x - x0) / (x1 - x0);
        }
    }
    knots[knots.len() - 1].1
}

/// One seeded open-loop scenario: a client population, its load shape,
/// and the SLO the suite accounts violations against.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// The load shape.
    pub kind: ScenarioKind,
    /// Simulated open-loop clients in the cohort population.
    pub clients: u64,
    /// Per-client request rate; aggregate base rate is
    /// `clients × rps_per_client`.
    pub rps_per_client: f64,
    /// Requests charged per cohort micro-batch (one queue operation and
    /// one histogram record per batch).
    pub batch: u64,
    /// Base per-request service time, ns.
    pub service_ns: f64,
    /// The latency SLO; a batch whose latency exceeds it violates.
    pub slo_ns: u64,
    /// Seed for arrival jitter and per-batch draws.
    pub seed: u64,
}

impl ScenarioSpec {
    /// The standard million-client population: 1e6 clients at 0.5 rps
    /// each (500k rps aggregate), 100-request micro-batches, 350 ns base
    /// service, 500 µs SLO. The raw utilization is a modest 0.175
    /// because the matrix's server runs spend well over half their
    /// horizon in GC pauses — *effective* utilization roughly triples,
    /// and a sub-millisecond pause is enough to blow the SLO for every
    /// batch queued behind it.
    pub fn new(kind: ScenarioKind, seed: u64) -> ScenarioSpec {
        ScenarioSpec {
            kind,
            clients: 1_000_000,
            rps_per_client: 0.5,
            batch: 100,
            service_ns: 350.0,
            slo_ns: 500_000,
            seed,
        }
    }

    /// Aggregate base arrival rate, requests per second.
    pub fn aggregate_rps(&self) -> f64 {
        self.clients as f64 * self.rps_per_client
    }
}

/// An SLO-violation window: a maximal run of consecutive violating
/// batches, attributed to the server activity it overlapped.
#[derive(Debug, Clone, Serialize)]
pub struct SloWindow {
    /// Arrival of the first violating batch, ns.
    pub start_ns: Ns,
    /// Completion of the last violating batch, ns.
    pub end_ns: Ns,
    /// Requests inside the window.
    pub requests: u64,
    /// Worst request latency inside the window, ns.
    pub worst_ns: u64,
    /// Distinct kinds of GC pause overlapping the window, in pause
    /// order (`gc-young`, `gc-mixed`, `gc-recovery`).
    pub gc_causes: Vec<String>,
    /// Total GC pause time overlapping the window, ns.
    pub gc_pause_ns: Ns,
    /// Distinct injected-fault windows overlapping, by fault name.
    pub fault_causes: Vec<String>,
    /// Persistence-fence instants inside the window.
    pub fence_count: u64,
}

impl SloWindow {
    /// Whether a GC pause overlapped this violation — the property the
    /// scenario-matrix gate demands of at least one cell.
    pub fn is_gc_attributed(&self) -> bool {
        !self.gc_causes.is_empty()
    }
}

/// The outcome of one scenario run: the full latency distribution plus
/// the attributed SLO-violation windows.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioResult {
    /// Requests simulated (the histogram's count).
    pub requests: u64,
    /// Cohort micro-batches processed.
    pub batches: u64,
    /// The SLO threshold the windows were accounted against, ns.
    pub slo_ns: u64,
    /// Per-request latency distribution.
    pub histogram: HdrHistogram,
    /// Attributed violation windows, in time order.
    pub violations: Vec<SloWindow>,
}

impl ScenarioResult {
    /// The standard report quantile set.
    pub fn quantiles_ms(&self) -> LatencyQuantiles {
        self.histogram.quantiles_ms()
    }

    /// Violation windows overlapping at least one GC pause.
    pub fn gc_attributed_windows(&self) -> usize {
        self.violations
            .iter()
            .filter(|w| w.is_gc_attributed())
            .count()
    }

    /// Requests inside violation windows.
    pub fn violating_requests(&self) -> u64 {
        self.violations.iter().map(|w| w.requests).sum()
    }
}

/// A uniform draw in `[0, 1)` from a splitmix64 stream, using only the
/// top 53 bits (an exact dyadic rational — no rounding).
fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Runs one open-loop cohort scenario against a server run's pause
/// schedule and trace.
///
/// `pauses` must be in time order (as [`AppRunResult::pause_spans`]
/// records them); `trace` is consulted for fault windows and fence
/// instants (pass `&[]` when the server ran untraced); `horizon_ns` is
/// the span to generate arrivals over, normally the server's `total_ns`.
///
/// [`AppRunResult::pause_spans`]: crate::runner::AppRunResult::pause_spans
pub fn run_scenario(
    spec: &ScenarioSpec,
    pauses: &[PauseSpan],
    trace: &[TraceEvent],
    horizon_ns: Ns,
) -> ScenarioResult {
    let mut state = spec.seed ^ 0x5C3A_9A11_0B6F_D2E1;
    let mut histogram = HdrHistogram::new();
    let mut batches = 0u64;
    let horizon = horizon_ns as f64;
    let base_rate = spec.aggregate_rps();

    let mut t = 0f64;
    let mut server_free: Ns = 0;
    let mut pause_idx = 0usize;
    let mut violations: Vec<SloWindow> = Vec::new();
    let mut open: Option<SloWindow> = None;

    loop {
        let x = t / horizon;
        // Expected batch gap at the current rate, jittered by a seeded
        // uniform in [0.5, 1.5) (mean 1.0 — the rate is preserved).
        let gap_ns = spec.batch as f64 * 1e9 / (base_rate * spec.kind.arrival_multiplier(x));
        t += gap_ns * (0.5 + unit(&mut state));
        if t >= horizon {
            break;
        }
        let arr = t as Ns;
        let draw = unit(&mut state);
        let service =
            (spec.batch as f64 * spec.service_ns * spec.kind.service_multiplier(x, draw)) as Ns;

        // Single FIFO server; service cannot make progress inside a
        // stop-the-world pause, so a request overlapping one is pushed
        // past its end (same mechanism as `cassandra::simulate_client`).
        let mut start = server_free.max(arr);
        while pause_idx < pauses.len() && pauses[pause_idx].end_ns <= start {
            pause_idx += 1;
        }
        let mut k = pause_idx;
        while k < pauses.len() && pauses[k].start_ns < start + service {
            if start < pauses[k].end_ns {
                start = pauses[k].end_ns;
            }
            k += 1;
        }
        let done = start + service;
        server_free = done;
        let latency = done - arr;
        histogram.record_n(latency, spec.batch);
        batches += 1;

        if latency > spec.slo_ns {
            match open.as_mut() {
                Some(w) => {
                    w.end_ns = done;
                    w.requests += spec.batch;
                    w.worst_ns = w.worst_ns.max(latency);
                }
                None => {
                    open = Some(SloWindow {
                        start_ns: arr,
                        end_ns: done,
                        requests: spec.batch,
                        worst_ns: latency,
                        gc_causes: Vec::new(),
                        gc_pause_ns: 0,
                        fault_causes: Vec::new(),
                        fence_count: 0,
                    });
                }
            }
        } else if let Some(w) = open.take() {
            violations.push(w);
        }
    }
    if let Some(w) = open.take() {
        violations.push(w);
    }

    for w in &mut violations {
        attribute(w, pauses, trace);
    }

    ScenarioResult {
        requests: histogram.count(),
        batches,
        slo_ns: spec.slo_ns,
        histogram,
        violations,
    }
}

/// Fills a window's attribution from the pause schedule and trace:
/// distinct overlapping GC-pause kinds plus total overlapped pause
/// time, distinct overlapping injected-fault names, and the count of
/// persistence-fence instants inside the window.
fn attribute(w: &mut SloWindow, pauses: &[PauseSpan], trace: &[TraceEvent]) {
    for p in pauses {
        if p.overlaps(w.start_ns, w.end_ns) {
            let overlap = p.end_ns.min(w.end_ns) - p.start_ns.max(w.start_ns);
            w.gc_pause_ns += overlap;
            let kind = p.kind().to_owned();
            if !w.gc_causes.contains(&kind) {
                w.gc_causes.push(kind);
            }
        }
    }
    for e in trace {
        match e.cat {
            TraceCat::Fault if e.ts < w.end_ns && w.start_ns < e.ts + e.dur => {
                let name = e.name.to_owned();
                if !w.fault_causes.contains(&name) {
                    w.fault_causes.push(name);
                }
            }
            TraceCat::Fence if (w.start_ns..w.end_ns).contains(&e.ts) => {
                w.fence_count += 1;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pause(start: Ns, end: Ns) -> PauseSpan {
        PauseSpan {
            start_ns: start,
            end_ns: end,
            mixed: false,
            recovered: false,
        }
    }

    const HORIZON: Ns = 200_000_000; // 200 ms

    #[test]
    fn steady_scenario_is_deterministic_and_bulk_charged() {
        let spec = ScenarioSpec::new(ScenarioKind::Steady, 7);
        let a = run_scenario(&spec, &[], &[], HORIZON);
        let b = run_scenario(&spec, &[], &[], HORIZON);
        assert_eq!(a.histogram.encode(), b.histogram.encode());
        assert_eq!(a.requests, a.batches * spec.batch);
        // 500k rps over 200 ms ≈ 100k requests in ≈1000 batches.
        assert!(a.requests > 50_000, "requests {}", a.requests);
        assert!(spec.clients >= 1_000_000);
    }

    #[test]
    fn unloaded_steady_run_meets_the_slo() {
        let spec = ScenarioSpec::new(ScenarioKind::Steady, 7);
        let r = run_scenario(&spec, &[], &[], HORIZON);
        assert!(
            r.violations.is_empty(),
            "no pauses, utilization 0.175: {:?}",
            r.violations.first()
        );
        let q = r.quantiles_ms();
        assert!(q.p50_ms > 0.0 && q.p9999_ms >= q.p999_ms && q.p999_ms >= q.p99_ms);
    }

    #[test]
    fn a_long_pause_creates_a_gc_attributed_violation() {
        let spec = ScenarioSpec::new(ScenarioKind::Steady, 7);
        // A 5 ms stop-the-world pause mid-run: every batch that arrives
        // during or queues behind it blows the 1 ms SLO.
        let pauses = [pause(100_000_000, 105_000_000)];
        let r = run_scenario(&spec, &pauses, &[], HORIZON);
        assert!(r.gc_attributed_windows() >= 1, "{:?}", r.violations);
        let w = r
            .violations
            .iter()
            .find(|w| w.is_gc_attributed())
            .expect("attributed window");
        assert_eq!(w.gc_causes, vec!["gc-young".to_owned()]);
        assert!(w.gc_pause_ns > 0 && w.worst_ns > spec.slo_ns);
        // Tail quantiles see the pause; the median does not.
        assert!(r.quantiles_ms().p9999_ms >= 1.0);
        assert!(r.quantiles_ms().p50_ms < 1.0);
    }

    #[test]
    fn flash_crowd_saturates_without_any_pause() {
        let spec = ScenarioSpec::new(ScenarioKind::FlashCrowd, 7);
        let r = run_scenario(&spec, &[], &[], HORIZON);
        // The ×8 burst exceeds raw capacity; violations appear but none
        // are GC-attributed (there were no pauses).
        assert!(!r.violations.is_empty());
        assert_eq!(r.gc_attributed_windows(), 0);
        let steady = run_scenario(
            &ScenarioSpec::new(ScenarioKind::Steady, 7),
            &[],
            &[],
            HORIZON,
        );
        assert!(r.quantiles_ms().p99_ms > steady.quantiles_ms().p99_ms);
    }

    #[test]
    fn diurnal_peak_shifts_load_without_saturating() {
        let spec = ScenarioSpec::new(ScenarioKind::Diurnal, 7);
        let r = run_scenario(&spec, &[], &[], HORIZON);
        let steady = run_scenario(
            &ScenarioSpec::new(ScenarioKind::Steady, 7),
            &[],
            &[],
            HORIZON,
        );
        // Peak ×1.35 keeps utilization under 1: no violations, but
        // fewer requests overall (the day curve's mean is below 1).
        assert!(r.violations.is_empty());
        assert!(r.requests < steady.requests);
    }

    #[test]
    fn hot_keys_and_backpressure_inflate_the_tail() {
        let steady = run_scenario(
            &ScenarioSpec::new(ScenarioKind::Steady, 7),
            &[],
            &[],
            HORIZON,
        );
        for kind in [ScenarioKind::HotKeySkew, ScenarioKind::SlowConsumer] {
            let r = run_scenario(&ScenarioSpec::new(kind, 7), &[], &[], HORIZON);
            assert!(
                r.quantiles_ms().p999_ms > steady.quantiles_ms().p999_ms,
                "{} should raise p99.9",
                kind.label()
            );
        }
    }

    #[test]
    fn attribution_separates_gc_from_faults_and_fences() {
        let spec = ScenarioSpec::new(ScenarioKind::Steady, 7);
        let pauses = [pause(50_000_000, 54_000_000)];
        let trace = [
            TraceEvent {
                ts: 51_000_000,
                dur: 2_000_000,
                track: 0,
                name: "latency-spike",
                cat: TraceCat::Fault,
                arg: 0,
            },
            TraceEvent {
                ts: 52_000_000,
                dur: 0,
                track: 0,
                name: "fence",
                cat: TraceCat::Fence,
                arg: 1,
            },
            // Outside any violation window: must not be attributed.
            TraceEvent {
                ts: 190_000_000,
                dur: 1_000,
                track: 0,
                name: "latency-spike",
                cat: TraceCat::Fault,
                arg: 0,
            },
        ];
        let r = run_scenario(&spec, &pauses, &trace, HORIZON);
        let w = r
            .violations
            .iter()
            .find(|w| w.is_gc_attributed())
            .expect("attributed window");
        assert_eq!(w.fault_causes, vec!["latency-spike".to_owned()]);
        assert_eq!(w.fence_count, 1);
    }

    #[test]
    fn piecewise_interpolates_and_clamps() {
        let knots = [(0.0, 1.0), (0.5, 3.0), (1.0, 2.0)];
        assert_eq!(piecewise(&knots, -1.0), 1.0);
        assert_eq!(piecewise(&knots, 0.25), 2.0);
        assert_eq!(piecewise(&knots, 0.75), 2.5);
        assert_eq!(piecewise(&knots, 2.0), 2.0);
    }

    #[test]
    fn scenario_labels_are_stable() {
        let labels: Vec<&str> = ScenarioKind::all().iter().map(|k| k.label()).collect();
        assert_eq!(
            labels,
            [
                "steady",
                "diurnal",
                "flash-crowd",
                "hot-key",
                "slow-consumer"
            ]
        );
    }
}
