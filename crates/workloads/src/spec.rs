//! The workload parameter vocabulary.
//!
//! A [`WorkloadSpec`] captures the GC-visible signature of an application:
//! what it allocates, how long objects live, how they are linked, and how
//! much non-allocation work the application does per object. The mutator
//! engine interprets these parameters against a real heap.

use nvmgc_heap::ClassTable;

/// One entry of an application's object-class mix.
#[derive(Debug, Clone, Copy)]
pub struct ClassMix {
    /// Reference slots per object.
    pub num_refs: u32,
    /// Payload bytes per object.
    pub data_bytes: u32,
    /// Relative allocation weight.
    pub weight: u32,
}

/// The GC-visible signature of one application.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Application name (matches the paper's figures).
    pub name: &'static str,
    /// Total bytes the application allocates over its run, as a multiple
    /// of the young-generation size (drives the number of GC cycles).
    pub alloc_young_multiple: f64,
    /// Object class mix.
    pub mix: Vec<ClassMix>,
    /// Probability an allocated object is reachable at the next GC
    /// (approximately the young-generation survival rate).
    pub survival: f64,
    /// How many GCs a surviving object stays reachable before its root is
    /// dropped. Values at or above the tenure age cause promotion.
    pub keep_gcs: u32,
    /// Fraction of surviving objects linked from old-generation anchors
    /// (drives remembered-set volume).
    pub old_link_fraction: f64,
    /// Fraction of surviving objects appended to a single linked chain —
    /// a serial traversal dependency that starves parallel GC workers
    /// (akka-uct's load imbalance).
    pub chain_fraction: f64,
    /// CPU nanoseconds of non-memory work per allocation (compute
    /// intensity: high values make the application less memory-bound, so
    /// NVM barely affects its non-GC time).
    pub cpu_per_alloc_ns: f64,
    /// Random field reads+writes on live objects per allocation
    /// (application-phase memory traffic). Memory-intensive applications
    /// read far more bytes than they allocate, so this is the main
    /// application-bandwidth knob.
    pub touches_per_alloc: u32,
    /// Application-level parallelism: the number of overlapping mutator
    /// lanes. Real Spark/Cassandra servers run dozens of worker threads,
    /// which is what lets the *application phase* saturate NVM bandwidth
    /// (paper Fig. 2b); a single serial mutator never could.
    pub app_threads: u32,
    /// Probability (per allocation) of adding an extra cross-reference
    /// between two live objects. Sharing is what makes forwarding-pointer
    /// deduplication matter: a shared object is reached through several
    /// slots, and every GC thread after the first must find the installed
    /// forwarding pointer (header or header map) instead of re-copying.
    pub share_fraction: f64,
    /// Bytes of long-lived data pre-tenured into the old generation at
    /// startup (Spark RDD caches, Cassandra memtables, ...).
    pub old_anchor_bytes: u64,
}

impl WorkloadSpec {
    /// Registers this workload's classes (plus the standard anchor class)
    /// into a fresh class table. The anchor class is always id 0.
    pub fn build_classes(&self) -> ClassTable {
        let mut t = ClassTable::new();
        t.register("anchor", 8, 16);
        for (i, m) in self.mix.iter().enumerate() {
            t.register(&format!("{}-c{}", self.name, i), m.num_refs, m.data_bytes);
        }
        t
    }

    /// The class id of mix entry `i` in the table built by
    /// [`WorkloadSpec::build_classes`].
    pub fn mix_class_id(&self, i: usize) -> u32 {
        (i + 1) as u32
    }

    /// Average object size of the mix in bytes (weighted).
    pub fn avg_object_bytes(&self) -> f64 {
        let mut bytes = 0.0;
        let mut weight = 0.0;
        for m in &self.mix {
            let size = (8 + m.num_refs * 8 + m.data_bytes + 7) & !7;
            bytes += size as f64 * m.weight as f64;
            weight += m.weight as f64;
        }
        if weight == 0.0 {
            0.0
        } else {
            bytes / weight
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "test",
            alloc_young_multiple: 4.0,
            mix: vec![
                ClassMix {
                    num_refs: 2,
                    data_bytes: 16,
                    weight: 3,
                },
                ClassMix {
                    num_refs: 0,
                    data_bytes: 56,
                    weight: 1,
                },
            ],
            survival: 0.5,
            keep_gcs: 1,
            old_link_fraction: 0.2,
            chain_fraction: 0.0,
            cpu_per_alloc_ns: 30.0,
            touches_per_alloc: 2,
            app_threads: 4,
            share_fraction: 0.2,
            old_anchor_bytes: 1 << 16,
        }
    }

    #[test]
    fn build_classes_registers_anchor_plus_mix() {
        let s = spec();
        let t = s.build_classes();
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(0).num_refs, 8, "anchor class");
        assert_eq!(t.get(s.mix_class_id(0)).num_refs, 2);
        assert_eq!(t.get(s.mix_class_id(1)).data_bytes, 56);
    }

    #[test]
    fn avg_object_bytes_weighted() {
        let s = spec();
        // pair: 8+16+16=40, leaf: 8+0+56=64; weights 3:1 → 46.
        assert!((s.avg_object_bytes() - 46.0).abs() < 1e-9);
    }

    #[test]
    fn empty_mix_has_zero_avg() {
        let mut s = spec();
        s.mix.clear();
        assert_eq!(s.avg_object_bytes(), 0.0);
    }
}
