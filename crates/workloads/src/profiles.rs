//! Per-application workload profiles.
//!
//! One profile per application in the paper's evaluation: the four Spark
//! applications (page-rank, kmeans, cc, sssp — §5.1) and the 22
//! Renaissance applications of Figs. 5/6/13, plus the two Cassandra
//! phases (see [`crate::cassandra`]). Parameters encode each
//! application's qualitative role in the paper:
//!
//! - Spark applications allocate huge numbers of small, pointer-rich,
//!   high-survival RDD tuples — long GC traversals, large write-cache and
//!   header-map benefit, near-full header-map occupancy (Fig. 10).
//! - `naive-bayes` is dominated by primitive-array copies — sequential
//!   NVM reads, big bandwidth numbers (Fig. 7c/d).
//! - `akka-uct` carries a long serial chain — GC load imbalance and
//!   moderate bandwidth even when optimized (Fig. 7e/f).
//! - `movie-lens`, `rx-scrabble` and `scala-doku` run compute-heavy with
//!   few short pauses — the three applications the paper reports as not
//!   benefiting (Fig. 5).
//! - The remaining Renaissance profiles vary size mixes, survival and
//!   remset pressure across realistic ranges.

use crate::spec::{ClassMix, WorkloadSpec};

fn mix(entries: &[(u32, u32, u32)]) -> Vec<ClassMix> {
    entries
        .iter()
        .map(|&(num_refs, data_bytes, weight)| ClassMix {
            num_refs,
            data_bytes,
            weight,
        })
        .collect()
}

/// Builds the profile for a named application.
///
/// # Panics
///
/// Panics on an unknown application name; use [`all_apps`] for the roster.
pub fn app(name: &str) -> WorkloadSpec {
    let mut s = base(name);
    s.name = leak_name(name);
    s
}

// Workload names are 'static; intern the handful of dynamic lookups.
fn leak_name(name: &str) -> &'static str {
    // The roster is a fixed, small set — find the static string instead of
    // leaking.
    ALL_APPS
        .iter()
        .copied()
        .find(|&n| n == name)
        .unwrap_or_else(|| panic!("unknown application '{name}'"))
}

/// The full roster (4 Spark + 22 Renaissance), in the paper's naming.
pub const ALL_APPS: [&str; 26] = [
    "akka-uct",
    "als",
    "chi-square",
    "dec-tree",
    "dotty",
    "finagle-chirper",
    "finagle-http",
    "fj-kmeans",
    "future-genetic",
    "gauss-mix",
    "log-regression",
    "mnemonics",
    "movie-lens",
    "naive-bayes",
    "neo4j-analytics",
    "par-mnemonics",
    "philosophers",
    "reactors",
    "rx-scrabble",
    "scala-doku",
    "scala-stm-bench7",
    "scrabble",
    "page-rank",
    "kmeans",
    "cc",
    "sssp",
];

/// All 26 application profiles.
pub fn all_apps() -> Vec<WorkloadSpec> {
    ALL_APPS.iter().map(|n| app(n)).collect()
}

/// The four Spark applications (§5.1).
pub fn spark_apps() -> Vec<WorkloadSpec> {
    ["page-rank", "kmeans", "cc", "sssp"]
        .iter()
        .map(|n| app(n))
        .collect()
}

/// The 22 Renaissance applications.
pub fn renaissance_apps() -> Vec<WorkloadSpec> {
    ALL_APPS[..22].iter().map(|n| app(n)).collect()
}

/// The six applications of the motivation study (Fig. 1): als, kmeans,
/// log-regression, movie-lens, page-rank, scala-stm-bench7.
pub fn fig1_apps() -> Vec<WorkloadSpec> {
    [
        "als",
        "kmeans",
        "log-regression",
        "movie-lens",
        "page-rank",
        "scala-stm-bench7",
    ]
    .iter()
    .map(|n| app(n))
    .collect()
}

fn base(name: &str) -> WorkloadSpec {
    // Small pointer-rich tuple mix shared by the Spark profiles.
    let spark_mix = mix(&[(2, 16, 50), (3, 24, 25), (1, 8, 15), (0, 160, 10)]);
    match name {
        // ---- Spark -----------------------------------------------------
        "page-rank" => WorkloadSpec {
            name: "page-rank",
            alloc_young_multiple: 14.0,
            mix: spark_mix,
            survival: 0.38,
            keep_gcs: 2,
            old_link_fraction: 0.25,
            chain_fraction: 0.02,
            cpu_per_alloc_ns: 14.0,
            touches_per_alloc: 22,
            app_threads: 32,
            share_fraction: 0.25,
            old_anchor_bytes: 512 << 10,
        },
        "kmeans" => WorkloadSpec {
            name: "kmeans",
            alloc_young_multiple: 12.0,
            mix: mix(&[(2, 16, 45), (1, 32, 30), (0, 256, 15), (3, 24, 10)]),
            survival: 0.34,
            keep_gcs: 2,
            old_link_fraction: 0.2,
            chain_fraction: 0.0,
            cpu_per_alloc_ns: 18.0,
            touches_per_alloc: 20,
            app_threads: 32,
            share_fraction: 0.2,
            old_anchor_bytes: 384 << 10,
        },
        "cc" => WorkloadSpec {
            name: "cc",
            alloc_young_multiple: 11.0,
            mix: mix(&[(2, 16, 50), (4, 16, 20), (0, 128, 15), (1, 8, 15)]),
            survival: 0.3,
            keep_gcs: 2,
            old_link_fraction: 0.22,
            chain_fraction: 0.03,
            cpu_per_alloc_ns: 20.0,
            touches_per_alloc: 18,
            app_threads: 32,
            share_fraction: 0.3,
            old_anchor_bytes: 384 << 10,
        },
        "sssp" => WorkloadSpec {
            name: "sssp",
            alloc_young_multiple: 12.0,
            mix: mix(&[(2, 16, 45), (3, 32, 25), (0, 96, 15), (1, 8, 15)]),
            survival: 0.32,
            keep_gcs: 2,
            old_link_fraction: 0.24,
            chain_fraction: 0.02,
            cpu_per_alloc_ns: 16.0,
            touches_per_alloc: 18,
            app_threads: 32,
            share_fraction: 0.28,
            old_anchor_bytes: 384 << 10,
        },
        // ---- Renaissance -------------------------------------------------
        "akka-uct" => WorkloadSpec {
            name: "akka-uct",
            // Long serial chain, small live set, many messages.
            alloc_young_multiple: 10.0,
            mix: mix(&[(2, 32, 50), (1, 48, 30), (3, 16, 20)]),
            survival: 0.16,
            keep_gcs: 1,
            old_link_fraction: 0.05,
            chain_fraction: 0.45,
            cpu_per_alloc_ns: 30.0,
            touches_per_alloc: 7,
            app_threads: 16,
            share_fraction: 0.1,
            old_anchor_bytes: 128 << 10,
        },
        "als" => WorkloadSpec {
            name: "als",
            // Matrix-factorization: arrays + tuples; app phase itself is
            // bandwidth-hungry (Fig. 3) but GC demand is higher still.
            alloc_young_multiple: 10.0,
            mix: mix(&[(0, 1024, 20), (2, 16, 45), (1, 64, 35)]),
            survival: 0.3,
            keep_gcs: 2,
            old_link_fraction: 0.15,
            chain_fraction: 0.0,
            cpu_per_alloc_ns: 22.0,
            touches_per_alloc: 22,
            app_threads: 32,
            share_fraction: 0.12,
            old_anchor_bytes: 256 << 10,
        },
        "chi-square" => WorkloadSpec {
            name: "chi-square",
            alloc_young_multiple: 9.0,
            mix: mix(&[(0, 512, 30), (2, 16, 40), (1, 32, 30)]),
            survival: 0.24,
            keep_gcs: 1,
            old_link_fraction: 0.12,
            chain_fraction: 0.0,
            cpu_per_alloc_ns: 26.0,
            touches_per_alloc: 10,
            app_threads: 16,
            share_fraction: 0.08,
            old_anchor_bytes: 192 << 10,
        },
        "dec-tree" => WorkloadSpec {
            name: "dec-tree",
            alloc_young_multiple: 9.0,
            mix: mix(&[(3, 24, 45), (0, 384, 25), (1, 16, 30)]),
            survival: 0.26,
            keep_gcs: 2,
            old_link_fraction: 0.15,
            chain_fraction: 0.02,
            cpu_per_alloc_ns: 24.0,
            touches_per_alloc: 10,
            app_threads: 16,
            share_fraction: 0.15,
            old_anchor_bytes: 256 << 10,
        },
        "dotty" => WorkloadSpec {
            name: "dotty",
            // Compiler: many short-lived small objects (trees, symbols).
            alloc_young_multiple: 10.0,
            mix: mix(&[(3, 16, 45), (2, 24, 35), (1, 40, 20)]),
            survival: 0.22,
            keep_gcs: 1,
            old_link_fraction: 0.1,
            chain_fraction: 0.02,
            cpu_per_alloc_ns: 28.0,
            touches_per_alloc: 8,
            app_threads: 12,
            share_fraction: 0.22,
            old_anchor_bytes: 192 << 10,
        },
        "finagle-chirper" => WorkloadSpec {
            name: "finagle-chirper",
            alloc_young_multiple: 9.0,
            mix: mix(&[(2, 48, 40), (1, 96, 35), (3, 16, 25)]),
            survival: 0.2,
            keep_gcs: 1,
            old_link_fraction: 0.08,
            chain_fraction: 0.0,
            cpu_per_alloc_ns: 32.0,
            touches_per_alloc: 8,
            app_threads: 16,
            share_fraction: 0.1,
            old_anchor_bytes: 128 << 10,
        },
        "finagle-http" => WorkloadSpec {
            name: "finagle-http",
            alloc_young_multiple: 9.0,
            mix: mix(&[(1, 128, 40), (2, 48, 35), (0, 256, 25)]),
            survival: 0.18,
            keep_gcs: 1,
            old_link_fraction: 0.06,
            chain_fraction: 0.0,
            cpu_per_alloc_ns: 34.0,
            touches_per_alloc: 8,
            app_threads: 16,
            share_fraction: 0.08,
            old_anchor_bytes: 128 << 10,
        },
        "fj-kmeans" => WorkloadSpec {
            name: "fj-kmeans",
            alloc_young_multiple: 10.0,
            mix: mix(&[(2, 16, 45), (0, 192, 25), (1, 32, 30)]),
            survival: 0.28,
            keep_gcs: 2,
            old_link_fraction: 0.15,
            chain_fraction: 0.0,
            cpu_per_alloc_ns: 22.0,
            touches_per_alloc: 10,
            app_threads: 16,
            share_fraction: 0.15,
            old_anchor_bytes: 256 << 10,
        },
        "future-genetic" => WorkloadSpec {
            name: "future-genetic",
            alloc_young_multiple: 9.0,
            mix: mix(&[(2, 32, 40), (0, 128, 30), (1, 24, 30)]),
            survival: 0.22,
            keep_gcs: 1,
            old_link_fraction: 0.1,
            chain_fraction: 0.04,
            cpu_per_alloc_ns: 26.0,
            touches_per_alloc: 8,
            app_threads: 16,
            share_fraction: 0.12,
            old_anchor_bytes: 192 << 10,
        },
        "gauss-mix" => WorkloadSpec {
            name: "gauss-mix",
            alloc_young_multiple: 9.0,
            mix: mix(&[(0, 768, 30), (1, 64, 35), (2, 16, 35)]),
            survival: 0.25,
            keep_gcs: 2,
            old_link_fraction: 0.12,
            chain_fraction: 0.0,
            cpu_per_alloc_ns: 24.0,
            touches_per_alloc: 11,
            app_threads: 16,
            share_fraction: 0.08,
            old_anchor_bytes: 256 << 10,
        },
        "log-regression" => WorkloadSpec {
            name: "log-regression",
            alloc_young_multiple: 11.0,
            mix: mix(&[(2, 16, 40), (0, 512, 25), (1, 48, 35)]),
            survival: 0.32,
            keep_gcs: 2,
            old_link_fraction: 0.18,
            chain_fraction: 0.0,
            cpu_per_alloc_ns: 20.0,
            touches_per_alloc: 20,
            app_threads: 32,
            share_fraction: 0.18,
            old_anchor_bytes: 320 << 10,
        },
        "mnemonics" => WorkloadSpec {
            name: "mnemonics",
            // String-crunching: high allocation rate, short lives.
            alloc_young_multiple: 12.0,
            mix: mix(&[(1, 40, 50), (0, 80, 30), (2, 24, 20)]),
            survival: 0.2,
            keep_gcs: 1,
            old_link_fraction: 0.06,
            chain_fraction: 0.0,
            cpu_per_alloc_ns: 18.0,
            touches_per_alloc: 7,
            app_threads: 12,
            share_fraction: 0.06,
            old_anchor_bytes: 96 << 10,
        },
        "movie-lens" => WorkloadSpec {
            name: "movie-lens",
            // Compute-heavy, low survival: infrequent short pauses — one
            // of the three applications the paper reports as unimproved.
            alloc_young_multiple: 5.0,
            mix: mix(&[(1, 64, 40), (0, 256, 30), (2, 24, 30)]),
            survival: 0.03,
            keep_gcs: 1,
            old_link_fraction: 0.04,
            chain_fraction: 0.0,
            cpu_per_alloc_ns: 120.0,
            touches_per_alloc: 8,
            app_threads: 12,
            share_fraction: 0.05,
            old_anchor_bytes: 192 << 10,
        },
        "naive-bayes" => WorkloadSpec {
            name: "naive-bayes",
            // Primitive-array heavy: large sequential copies (Fig. 7c/d).
            alloc_young_multiple: 11.0,
            mix: mix(&[(0, 2048, 30), (0, 4096, 15), (1, 64, 30), (2, 16, 25)]),
            survival: 0.28,
            keep_gcs: 1,
            old_link_fraction: 0.1,
            chain_fraction: 0.0,
            cpu_per_alloc_ns: 26.0,
            touches_per_alloc: 10,
            app_threads: 16,
            share_fraction: 0.06,
            old_anchor_bytes: 256 << 10,
        },
        "neo4j-analytics" => WorkloadSpec {
            name: "neo4j-analytics",
            alloc_young_multiple: 10.0,
            mix: mix(&[(4, 24, 40), (2, 16, 35), (0, 192, 25)]),
            survival: 0.28,
            keep_gcs: 2,
            old_link_fraction: 0.2,
            chain_fraction: 0.03,
            cpu_per_alloc_ns: 22.0,
            touches_per_alloc: 11,
            app_threads: 16,
            share_fraction: 0.3,
            old_anchor_bytes: 384 << 10,
        },
        "par-mnemonics" => WorkloadSpec {
            name: "par-mnemonics",
            alloc_young_multiple: 12.0,
            mix: mix(&[(1, 40, 50), (0, 96, 30), (2, 24, 20)]),
            survival: 0.22,
            keep_gcs: 1,
            old_link_fraction: 0.06,
            chain_fraction: 0.0,
            cpu_per_alloc_ns: 16.0,
            touches_per_alloc: 7,
            app_threads: 16,
            share_fraction: 0.06,
            old_anchor_bytes: 96 << 10,
        },
        "philosophers" => WorkloadSpec {
            name: "philosophers",
            alloc_young_multiple: 9.0,
            mix: mix(&[(2, 16, 55), (1, 32, 30), (3, 8, 15)]),
            survival: 0.18,
            keep_gcs: 1,
            old_link_fraction: 0.05,
            chain_fraction: 0.05,
            cpu_per_alloc_ns: 30.0,
            touches_per_alloc: 6,
            app_threads: 12,
            share_fraction: 0.12,
            old_anchor_bytes: 64 << 10,
        },
        "reactors" => WorkloadSpec {
            name: "reactors",
            alloc_young_multiple: 11.0,
            mix: mix(&[(2, 24, 50), (1, 48, 30), (3, 16, 20)]),
            survival: 0.2,
            keep_gcs: 1,
            old_link_fraction: 0.08,
            chain_fraction: 0.1,
            cpu_per_alloc_ns: 22.0,
            touches_per_alloc: 7,
            app_threads: 16,
            share_fraction: 0.12,
            old_anchor_bytes: 128 << 10,
        },
        "rx-scrabble" => WorkloadSpec {
            name: "rx-scrabble",
            // Short run, tiny live set: the pauses are rare and brief — an
            // unimproved application in Fig. 5.
            alloc_young_multiple: 4.0,
            mix: mix(&[(1, 32, 50), (0, 64, 30), (2, 16, 20)]),
            survival: 0.02,
            keep_gcs: 1,
            old_link_fraction: 0.02,
            chain_fraction: 0.0,
            cpu_per_alloc_ns: 90.0,
            touches_per_alloc: 6,
            app_threads: 12,
            share_fraction: 0.05,
            old_anchor_bytes: 64 << 10,
        },
        "scala-doku" => WorkloadSpec {
            name: "scala-doku",
            // Solver with heavy compute and little garbage churn — the
            // third unimproved application.
            alloc_young_multiple: 4.0,
            mix: mix(&[(2, 16, 50), (1, 24, 35), (0, 48, 15)]),
            survival: 0.035,
            keep_gcs: 1,
            old_link_fraction: 0.03,
            chain_fraction: 0.0,
            cpu_per_alloc_ns: 110.0,
            touches_per_alloc: 7,
            app_threads: 12,
            share_fraction: 0.1,
            old_anchor_bytes: 64 << 10,
        },
        "scala-stm-bench7" => WorkloadSpec {
            name: "scala-stm-bench7",
            // STM: GC-intensive with many medium-lived transaction logs.
            alloc_young_multiple: 13.0,
            mix: mix(&[(3, 24, 40), (2, 16, 35), (1, 64, 25)]),
            survival: 0.36,
            keep_gcs: 2,
            old_link_fraction: 0.2,
            chain_fraction: 0.02,
            cpu_per_alloc_ns: 16.0,
            touches_per_alloc: 16,
            app_threads: 28,
            share_fraction: 0.25,
            old_anchor_bytes: 256 << 10,
        },
        "scrabble" => WorkloadSpec {
            name: "scrabble",
            alloc_young_multiple: 8.0,
            mix: mix(&[(1, 32, 45), (0, 96, 30), (2, 16, 25)]),
            survival: 0.16,
            keep_gcs: 1,
            old_link_fraction: 0.05,
            chain_fraction: 0.0,
            cpu_per_alloc_ns: 36.0,
            touches_per_alloc: 6,
            app_threads: 12,
            share_fraction: 0.06,
            old_anchor_bytes: 96 << 10,
        },
        other => panic!("unknown application '{other}'"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_is_complete_and_unique() {
        let apps = all_apps();
        assert_eq!(apps.len(), 26);
        let mut names: Vec<&str> = apps.iter().map(|a| a.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 26, "duplicate profile names");
    }

    #[test]
    fn sub_rosters() {
        assert_eq!(spark_apps().len(), 4);
        assert_eq!(renaissance_apps().len(), 22);
        assert_eq!(fig1_apps().len(), 6);
        assert!(renaissance_apps().iter().all(|a| a.name != "page-rank"));
    }

    #[test]
    #[should_panic(expected = "unknown application")]
    fn unknown_app_panics() {
        app("fortnite");
    }

    #[test]
    fn profiles_have_sane_parameters() {
        for a in all_apps() {
            assert!(!a.mix.is_empty(), "{}", a.name);
            assert!((0.0..=1.0).contains(&a.survival), "{}", a.name);
            assert!(
                a.chain_fraction + a.old_link_fraction <= 1.0,
                "{}: link fractions exceed 1",
                a.name
            );
            assert!(a.alloc_young_multiple >= 2.0, "{}", a.name);
            assert!(a.avg_object_bytes() > 0.0, "{}", a.name);
            // Everything must fit a 64 KiB region.
            for m in &a.mix {
                assert!(m.data_bytes + m.num_refs * 8 + 8 < 64 << 10, "{}", a.name);
            }
        }
    }

    #[test]
    fn unimproved_apps_are_compute_heavy() {
        for name in ["movie-lens", "rx-scrabble", "scala-doku"] {
            let a = app(name);
            assert!(a.cpu_per_alloc_ns >= 80.0, "{name}");
            assert!(a.survival <= 0.15, "{name}");
        }
    }

    #[test]
    fn naive_bayes_is_array_heavy() {
        let a = app("naive-bayes");
        assert!(a.mix.iter().any(|m| m.data_bytes >= 2048));
    }

    #[test]
    fn akka_uct_has_chain_dominance() {
        let a = app("akka-uct");
        assert!(a.chain_fraction >= 0.4);
    }
}
