//! The software-prefetch microbenchmark of paper §4.3.
//!
//! A large array lives on DRAM or NVM; a pre-generated random index
//! sequence drives read-modify-write accesses. With prefetching enabled,
//! the access at position `i` prefetches the element needed at `i + D`.
//! The paper reports prefetching helps both devices but NVM far more
//! (3.05× vs 1.58× on 40M accesses).

use nvmgc_memsim::{DeviceId, MemConfig, MemorySystem, Ns};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration of the microbenchmark.
#[derive(Debug, Clone)]
pub struct MicroConfig {
    /// Number of array elements (64 B apart, i.e. one cache line each).
    pub elements: u64,
    /// Number of random accesses.
    pub accesses: u64,
    /// Prefetch distance (how many iterations ahead to prefetch).
    pub distance: usize,
    /// RNG seed for the index sequence.
    pub seed: u64,
}

impl Default for MicroConfig {
    fn default() -> Self {
        MicroConfig {
            elements: 1 << 20, // 64 MiB array
            accesses: 2_000_000,
            distance: 16,
            seed: 42,
        }
    }
}

/// Runs the microbenchmark and returns the simulated duration.
pub fn run_micro(dev: DeviceId, prefetch: bool, cfg: &MicroConfig) -> Ns {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let indices: Vec<u64> = (0..cfg.accesses)
        .map(|_| rng.random_range(0..cfg.elements))
        .collect();
    // An LLC far smaller than the array, matching the paper's setup.
    let mut mem = MemorySystem::new(MemConfig {
        llc_bytes: 2 << 20,
        prefetch_slots: cfg.distance * 4,
        ..MemConfig::default()
    });
    mem.set_threads(1);
    let base = 0x1000_0000u64;
    let addr = |i: u64| base + i * 64;
    // Initialize the array with one streaming scan — a single bulk charge
    // for the whole contiguous run, like the memset the real benchmark
    // performs before timing accesses.
    let mut now: Ns = mem.write_bulk(dev, base, cfg.elements * 64, 0);
    for (k, &idx) in indices.iter().enumerate() {
        if prefetch {
            if let Some(&future) = indices.get(k + cfg.distance) {
                now = mem.prefetch(0, dev, addr(future), now);
            }
        }
        // Read-modify-write of the element.
        now = mem.read_word(0, dev, addr(idx), now);
        now = mem.write_word(0, dev, addr(idx), now);
        // A little compute per iteration.
        now += 4;
    }
    now
}

/// The four-configuration table of §4.3 (seconds, scaled).
#[derive(Debug, Clone, Copy)]
pub struct MicroTable {
    /// DRAM without prefetching, ns.
    pub dram_nopf: Ns,
    /// DRAM with prefetching, ns.
    pub dram_pf: Ns,
    /// NVM without prefetching, ns.
    pub nvm_nopf: Ns,
    /// NVM with prefetching, ns.
    pub nvm_pf: Ns,
}

impl MicroTable {
    /// Runs all four configurations.
    ///
    /// The cells are independent — each `run_micro` builds its own
    /// `MemorySystem` and RNG — so they run on scoped threads; results
    /// are identical to running them back to back.
    pub fn run(cfg: &MicroConfig) -> MicroTable {
        let cells: [(DeviceId, bool); 4] = [
            (DeviceId::Dram, false),
            (DeviceId::Dram, true),
            (DeviceId::Nvm, false),
            (DeviceId::Nvm, true),
        ];
        let mut results: [Ns; 4] = [0; 4];
        std::thread::scope(|s| {
            let handles: Vec<_> = cells
                .iter()
                .map(|&(dev, pf)| s.spawn(move || run_micro(dev, pf, cfg)))
                .collect();
            for (slot, h) in results.iter_mut().zip(handles) {
                *slot = h.join().expect("microbenchmark cell panicked");
            }
        });
        MicroTable {
            dram_nopf: results[0],
            dram_pf: results[1],
            nvm_nopf: results[2],
            nvm_pf: results[3],
        }
    }

    /// Speedup from prefetching on DRAM.
    pub fn dram_speedup(&self) -> f64 {
        self.dram_nopf as f64 / self.dram_pf as f64
    }

    /// Speedup from prefetching on NVM.
    pub fn nvm_speedup(&self) -> f64 {
        self.nvm_nopf as f64 / self.nvm_pf as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MicroConfig {
        MicroConfig {
            elements: 1 << 16,
            accesses: 50_000,
            distance: 16,
            seed: 7,
        }
    }

    #[test]
    fn prefetch_helps_both_devices() {
        let t = MicroTable::run(&small());
        assert!(t.dram_speedup() > 1.1, "dram speedup {}", t.dram_speedup());
        assert!(t.nvm_speedup() > 1.1, "nvm speedup {}", t.nvm_speedup());
    }

    #[test]
    fn nvm_benefits_more_than_dram() {
        let t = MicroTable::run(&small());
        assert!(
            t.nvm_speedup() > t.dram_speedup(),
            "nvm {} vs dram {}",
            t.nvm_speedup(),
            t.dram_speedup()
        );
    }

    #[test]
    fn nvm_is_slower_than_dram_without_prefetch() {
        let t = MicroTable::run(&small());
        assert!(t.nvm_nopf > 2 * t.dram_nopf);
    }

    #[test]
    fn deterministic() {
        let a = run_micro(DeviceId::Nvm, true, &small());
        let b = run_micro(DeviceId::Nvm, true, &small());
        assert_eq!(a, b);
    }
}
