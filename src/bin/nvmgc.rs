//! `nvmgc` — command-line driver for the NVM-GC simulator.
//!
//! ```text
//! nvmgc list                              # the 26 application profiles
//! nvmgc run --app page-rank --config all  # one run, detailed report
//! nvmgc sweep --app kmeans                # all configs side by side
//! nvmgc micro                             # §4.3 prefetch microbenchmark
//! ```
//!
//! Argument parsing is hand-rolled (no CLI dependency): flags are
//! `--key value` pairs after the subcommand.

use nvmgc_core::GcConfig;
use nvmgc_heap::DevicePlacement;
use nvmgc_workloads::prefetch_micro::{MicroConfig, MicroTable};
use nvmgc_workloads::runner::GcTrigger;
use nvmgc_workloads::{all_apps, app, run_app, AppRunConfig};
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        return ExitCode::FAILURE;
    };
    let flags = parse_flags(&args[1..]);
    match cmd.as_str() {
        "list" => list(),
        "run" => run(&flags),
        "sweep" => sweep(&flags),
        "micro" => micro(&flags),
        "help" | "--help" | "-h" => {
            usage();
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command '{other}'");
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "nvmgc — NVM-aware copy-based GC simulator (EuroSys '21 reproduction)

USAGE:
  nvmgc list
      List the 26 application profiles.
  nvmgc run --app <name> [--config <cfg>] [--threads <n>] [--placement <p>]
            [--seed <n>] [--mixed <ihop>]
      Run one application and print a detailed GC report.
  nvmgc sweep --app <name> [--threads <n>]
      Compare vanilla / +writecache / +all / dram side by side.
  nvmgc micro [--accesses <n>]
      Run the §4.3 software-prefetch microbenchmark.

FLAGS:
  --config     vanilla | writecache | all | ps-vanilla | ps-all  (default: all)
  --threads    GC worker threads                                  (default: 28)
  --placement  nvm | dram | young-dram                            (default: nvm)
  --seed       workload seed                                      (default: 0x5EED)
  --mixed      enable adaptive mixed GCs at this old-occupancy fraction
  --log        true → print a HotSpot-style GC log for the run"
    );
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            if i + 1 < args.len() {
                flags.insert(key.to_owned(), args[i + 1].clone());
                i += 2;
                continue;
            }
        }
        eprintln!("ignoring stray argument '{}'", args[i]);
        i += 1;
    }
    flags
}

fn list() -> ExitCode {
    println!(
        "{:<18} {:>8} {:>9} {:>7} {:>9} {:>7}",
        "app", "avg obj", "survival", "keep", "oldlink", "chain"
    );
    for spec in all_apps() {
        println!(
            "{:<18} {:>7.0}B {:>9.2} {:>7} {:>9.2} {:>7.2}",
            spec.name,
            spec.avg_object_bytes(),
            spec.survival,
            spec.keep_gcs,
            spec.old_link_fraction,
            spec.chain_fraction
        );
    }
    ExitCode::SUCCESS
}

fn build_config(flags: &HashMap<String, String>) -> Result<AppRunConfig, String> {
    let name = flags
        .get("app")
        .ok_or_else(|| "--app <name> is required".to_owned())?;
    let threads: usize = flags
        .get("threads")
        .map(|v| v.parse().map_err(|_| format!("bad --threads '{v}'")))
        .transpose()?
        .unwrap_or(28);
    let gc = match flags.get("config").map(String::as_str).unwrap_or("all") {
        "vanilla" => GcConfig::vanilla(threads),
        "writecache" => GcConfig::plus_writecache(threads, 0),
        "all" => GcConfig::plus_all(threads, 0),
        "ps-vanilla" => GcConfig::ps_vanilla(threads),
        "ps-all" => GcConfig::ps_plus_all(threads, 0),
        other => return Err(format!("unknown --config '{other}'")),
    };
    let spec =
        std::panic::catch_unwind(|| app(name)).map_err(|_| format!("unknown app '{name}'"))?;
    let mut cfg = AppRunConfig::standard(spec, gc);
    let heap_bytes = cfg.heap_bytes();
    if cfg.gc.write_cache.enabled {
        cfg.gc.write_cache.max_bytes = heap_bytes / 32;
    }
    if cfg.gc.header_map.enabled {
        cfg.gc.header_map.max_bytes = heap_bytes / 32;
    }
    match flags.get("placement").map(String::as_str) {
        Some("dram") => cfg.heap.placement = DevicePlacement::all_dram(),
        Some("young-dram") => cfg.heap.placement = DevicePlacement::young_dram(),
        Some("nvm") | None => {}
        Some(other) => return Err(format!("unknown --placement '{other}'")),
    }
    if let Some(seed) = flags.get("seed") {
        cfg.seed = parse_u64(seed).ok_or_else(|| format!("bad --seed '{seed}'"))?;
    }
    if let Some(ihop) = flags.get("mixed") {
        let ihop: f64 = ihop.parse().map_err(|_| format!("bad --mixed '{ihop}'"))?;
        cfg.trigger = GcTrigger::Adaptive { ihop };
    }
    Ok(cfg)
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn run(flags: &HashMap<String, String>) -> ExitCode {
    let mut cfg = match build_config(flags) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Detailed reports include phase bandwidth, which needs sampling.
    cfg.sample_series = true;
    let want_log = flags.get("log").map(String::as_str) == Some("true");
    cfg.keep_gc_log = want_log;
    let r = match run_app(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("app:          {}", r.name);
    println!("total time:   {:>10.2} ms", r.total_seconds() * 1e3);
    println!("mutator time: {:>10.2} ms", r.mutator_seconds() * 1e3);
    println!(
        "GC time:      {:>10.2} ms over {} cycles ({:.1}% of run, {} mixed)",
        r.gc_seconds() * 1e3,
        r.gc.cycles(),
        r.gc_share() * 100.0,
        r.mixed_cycles
    );
    println!(
        "pauses:       max {:.2} ms, copied {:.1} MiB, promoted {:.1} MiB",
        r.gc.max_pause_ns() as f64 / 1e6,
        r.gc.copied_bytes as f64 / (1 << 20) as f64,
        r.gc.promoted_bytes as f64 / (1 << 20) as f64
    );
    println!(
        "in-GC NVM bw: read {:.0} MB/s, write {:.0} MB/s",
        r.gc_nvm_bandwidth.0, r.gc_nvm_bandwidth.1
    );
    println!("peak old:     {} regions", r.peak_old_regions);
    let hm_hits: u64 = r.cycles.iter().map(|c| c.hm_hits).sum();
    let overflow: u64 = r.cycles.iter().map(|c| c.cache_overflow_copies).sum();
    let failures: u64 = r.cycles.iter().map(|c| c.evac_failures).sum();
    if hm_hits > 0 || overflow > 0 || failures > 0 {
        println!("details:      header-map hits {hm_hits}, cache overflows {overflow}, evac failures {failures}");
    }
    if want_log {
        println!();
        print!("{}", r.gc_log.render());
    }
    ExitCode::SUCCESS
}

fn sweep(flags: &HashMap<String, String>) -> ExitCode {
    let mut flags = flags.clone();
    println!(
        "{:<12} {:>10} {:>10} {:>9} {:>8}",
        "config", "gc (ms)", "app (ms)", "gc share", "vs base"
    );
    let mut base = 0.0f64;
    for (label, config, placement) in [
        ("vanilla", "vanilla", "nvm"),
        ("+writecache", "writecache", "nvm"),
        ("+all", "all", "nvm"),
        ("young-dram", "vanilla", "young-dram"),
        ("dram", "vanilla", "dram"),
    ] {
        flags.insert("config".to_owned(), config.to_owned());
        flags.insert("placement".to_owned(), placement.to_owned());
        let cfg = match build_config(&flags) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        match run_app(&cfg) {
            Ok(r) => {
                let gc_ms = r.gc_seconds() * 1e3;
                if base == 0.0 {
                    base = gc_ms;
                }
                println!(
                    "{:<12} {:>10.2} {:>10.2} {:>8.1}% {:>7.2}x",
                    label,
                    gc_ms,
                    r.total_seconds() * 1e3,
                    r.gc_share() * 100.0,
                    base / gc_ms
                );
            }
            Err(e) => eprintln!("{label}: failed: {e}"),
        }
    }
    ExitCode::SUCCESS
}

fn micro(flags: &HashMap<String, String>) -> ExitCode {
    let accesses = flags
        .get("accesses")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);
    let cfg = MicroConfig {
        accesses,
        ..MicroConfig::default()
    };
    let t = MicroTable::run(&cfg);
    println!("accesses: {accesses}");
    println!(
        "DRAM: {:.2} ms → {:.2} ms with prefetch ({:.2}x)",
        t.dram_nopf as f64 / 1e6,
        t.dram_pf as f64 / 1e6,
        t.dram_speedup()
    );
    println!(
        "NVM:  {:.2} ms → {:.2} ms with prefetch ({:.2}x)",
        t.nvm_nopf as f64 / 1e6,
        t.nvm_pf as f64 / 1e6,
        t.nvm_speedup()
    );
    ExitCode::SUCCESS
}
