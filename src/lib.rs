//! nvmgc — umbrella crate for the EuroSys '21 NVM-friendly-GC
//! reproduction.
//!
//! This crate re-exports the workspace members so downstream users can
//! depend on one crate and reach everything:
//!
//! - [`memsim`] — the deterministic DRAM/NVM timing model;
//! - [`heap`] — the region-based managed heap;
//! - [`core`] — the collectors and the paper's NVM-aware optimizations;
//! - [`workloads`] — the 26 application profiles and the run driver;
//! - [`metrics`] — statistics and report rendering.
//!
//! The [`prelude`] gathers the handful of types most programs need. See
//! the repository README for a quickstart, `DESIGN.md` for architecture,
//! and `EXPERIMENTS.md` for the paper-vs-measured record.

#![warn(missing_docs)]

pub use nvmgc_core as core;
pub use nvmgc_heap as heap;
pub use nvmgc_memsim as memsim;
pub use nvmgc_metrics as metrics;
pub use nvmgc_workloads as workloads;

/// The types most programs start from.
pub mod prelude {
    pub use nvmgc_core::{CollectorKind, G1Collector, GcConfig, GcCycleOutcome};
    pub use nvmgc_heap::{Addr, ClassTable, DevicePlacement, Heap, HeapConfig, RegionKind};
    pub use nvmgc_memsim::{DeviceId, MemConfig, MemorySystem};
    pub use nvmgc_workloads::runner::GcTrigger;
    pub use nvmgc_workloads::{all_apps, app, run_app, AppRunConfig, AppRunResult};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_core_workflow() {
        use crate::prelude::*;
        let cfg = AppRunConfig::standard(app("scrabble"), GcConfig::vanilla(2));
        assert_eq!(cfg.gc.collector, CollectorKind::G1);
        assert!(cfg.heap_bytes() > 0);
    }
}
