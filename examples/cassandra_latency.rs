//! Cassandra-like tail-latency demo (paper §5.4, Fig. 8).
//!
//! Runs a memtable-style server workload under vanilla and optimized G1,
//! then drives an open-loop client against each run's pause schedule and
//! prints the throughput/latency curves for the write and read phases.
//!
//! ```sh
//! cargo run --release --example cassandra_latency
//! ```

use nvmgc_core::GcConfig;
use nvmgc_workloads::cassandra::{server_spec, simulate_client, CassandraPhase};
use nvmgc_workloads::{run_app, AppRunConfig};

fn main() {
    let threads = 28;
    println!("== Cassandra-like tail latency, {threads} GC threads ==\n");
    for phase in [CassandraPhase::Write, CassandraPhase::Read] {
        let (phase_name, service_ns) = match phase {
            CassandraPhase::Write => ("write", 5_500.0),
            CassandraPhase::Read => ("read", 4_000.0),
        };
        println!("--- {phase_name} phase ---");
        println!(
            "{:>8} | {:>9} {:>9} | {:>9} {:>9} | {:>7} {:>7}",
            "kqps", "opt p95", "opt p99", "van p95", "van p99", "p95 x", "p99 x"
        );
        for tput in [10_000.0f64, 30_000.0, 60_000.0, 100_000.0, 130_000.0] {
            let mut row = Vec::new();
            for gc in [GcConfig::plus_all(threads, 0), GcConfig::vanilla(threads)] {
                let mut cfg = AppRunConfig::standard(server_spec(phase), gc);
                let hb = cfg.heap_bytes();
                if cfg.gc.write_cache.enabled {
                    cfg.gc.write_cache.max_bytes = hb / 32;
                }
                if cfg.gc.header_map.enabled {
                    cfg.gc.header_map.max_bytes = hb / 32;
                }
                let server = run_app(&cfg).expect("server run succeeds");
                let lat = simulate_client(
                    &server.pause_intervals,
                    server.total_ns,
                    service_ns,
                    tput,
                    42,
                );
                row.push((lat.p95_ms, lat.p99_ms));
            }
            let (opt, van) = (row[0], row[1]);
            println!(
                "{:>8.0} | {:>9.2} {:>9.2} | {:>9.2} {:>9.2} | {:>6.2}x {:>6.2}x",
                tput / 1e3,
                opt.0,
                opt.1,
                van.0,
                van.1,
                van.0 / opt.0.max(1e-9),
                van.1 / opt.1.max(1e-9),
            );
        }
        println!();
    }
    println!(
        "Paper Fig. 8 at 130 kqps: p95/p99 read latency improves 5.09x/4.88x, \
         writes 2.74x/2.54x — shorter pauses shrink worst-case queueing."
    );
}
