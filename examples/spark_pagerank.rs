//! Spark-like page-rank under the NVM-aware collector: a deep dive into
//! what the optimizations do to a single GC-heavy application.
//!
//! Prints per-cycle pause breakdowns (read-mostly scan vs write-only
//! write-back vs header-map cleanup), write-cache and header-map
//! statistics, and the in-GC NVM bandwidth — the observable effects the
//! paper's §3 design aims for.
//!
//! ```sh
//! cargo run --release --example spark_pagerank
//! ```

use nvmgc_core::GcConfig;
use nvmgc_workloads::{app, run_app, AppRunConfig};

fn main() {
    let threads = 28;
    let spec = app("page-rank");
    println!("== page-rank on simulated NVM, {threads} GC threads ==\n");

    for (label, gc) in [
        ("vanilla", GcConfig::vanilla(threads)),
        ("+all", GcConfig::plus_all(threads, 0)),
    ] {
        let mut cfg = AppRunConfig::standard(spec.clone(), gc);
        let heap_bytes = cfg.heap_bytes();
        if cfg.gc.write_cache.enabled {
            cfg.gc.write_cache.max_bytes = heap_bytes / 32;
        }
        if cfg.gc.header_map.enabled {
            cfg.gc.header_map.max_bytes = heap_bytes / 32;
        }
        cfg.sample_series = true;
        let r = run_app(&cfg).expect("run succeeds");

        println!("--- {label} ---");
        println!(
            "total {:.1} ms, GC {:.1} ms over {} cycles ({:.1}% of run)",
            r.total_seconds() * 1e3,
            r.gc_seconds() * 1e3,
            r.gc.cycles(),
            r.gc_share() * 100.0
        );
        println!(
            "in-GC NVM bandwidth: read {:.0} MB/s, write {:.0} MB/s",
            r.gc_nvm_bandwidth.0, r.gc_nvm_bandwidth.1
        );
        // Per-cycle detail for the first few collections.
        println!(
            "{:>5} {:>10} {:>10} {:>10} {:>9} {:>10} {:>8}",
            "gc#", "scan", "writeback", "clear", "copiedKB", "hm hits", "steals"
        );
        for (i, cyc) in r.cycles.iter().take(6).enumerate() {
            println!(
                "{:>5} {:>9.2}m {:>9.2}m {:>9.2}m {:>9} {:>10} {:>8}",
                i,
                cyc.phases.scan_ns as f64 / 1e6,
                cyc.phases.writeback_ns as f64 / 1e6,
                cyc.phases.clear_ns as f64 / 1e6,
                cyc.copied_bytes / 1024,
                cyc.hm_hits,
                cyc.steals
            );
        }
        let overflow: u64 = r.cycles.iter().map(|c| c.cache_overflow_copies).sum();
        let hm_full: u64 = r.cycles.iter().map(|c| c.hm_full).sum();
        if label == "+all" {
            println!(
                "write-cache overflow copies: {overflow} (budget-bound, paper §3.2); \
                 header-map overflows to NVM: {hm_full} (bounded probing, Algorithm 1)"
            );
        }
        println!();
    }
    println!(
        "Expected shape (paper Fig. 5/7): +all shortens pauses by moving survivor \
         copies and forwarding pointers to DRAM, then streaming them back with \
         non-temporal stores in a separate write-only sub-phase."
    );
}
