//! Tuning the DRAM budget: write-cache size, header-map size and
//! asynchronous flushing (paper §5.5, Figs. 10–11).
//!
//! The whole point of the paper's design is spending a *little* DRAM
//! well. This example sweeps the two DRAM structures on page-rank (the
//! application that profits most from extra cache) and shows the
//! DRAM-footprint/GC-time trade-off, including async flushing's early
//! reclamation.
//!
//! ```sh
//! cargo run --release --example tuning_writecache
//! ```

use nvmgc_core::GcConfig;
use nvmgc_workloads::{app, run_app, AppRunConfig, AppRunResult};

fn run(mutate: impl Fn(&mut AppRunConfig)) -> AppRunResult {
    let mut cfg = AppRunConfig::standard(app("page-rank"), GcConfig::plus_all(28, 0));
    let hb = cfg.heap_bytes();
    cfg.gc.write_cache.max_bytes = hb / 32;
    cfg.gc.header_map.max_bytes = hb / 32;
    mutate(&mut cfg);
    run_app(&cfg).expect("run succeeds")
}

fn main() {
    println!("== page-rank: DRAM budget vs GC time ==\n");

    println!("write-cache size sweep (header map fixed at heap/32):");
    println!(
        "{:>12} {:>10} {:>14} {:>14}",
        "cache", "gc (ms)", "peak DRAM(KiB)", "overflow copies"
    );
    let heap_bytes = AppRunConfig::standard(app("page-rank"), GcConfig::vanilla(1)).heap_bytes();
    for (label, bytes) in [
        ("heap/128", heap_bytes / 128),
        ("heap/32", heap_bytes / 32),
        ("heap/8", heap_bytes / 8),
        ("unlimited", u64::MAX),
    ] {
        let r = run(|c| c.gc.write_cache.max_bytes = bytes);
        let peak = r
            .cycles
            .iter()
            .map(|c| c.cache_peak_bytes)
            .max()
            .unwrap_or(0);
        let overflow: u64 = r.cycles.iter().map(|c| c.cache_overflow_copies).sum();
        println!(
            "{:>12} {:>10.1} {:>14} {:>14}",
            label,
            r.gc_seconds() * 1e3,
            peak >> 10,
            overflow
        );
    }

    println!("\nheader-map size sweep (cache fixed at heap/32):");
    println!("{:>12} {:>10} {:>14}", "map", "gc (ms)", "NVM fallbacks");
    for (label, bytes) in [
        ("heap/512", heap_bytes / 512),
        ("heap/128", heap_bytes / 128),
        ("heap/32", heap_bytes / 32),
        ("heap/8", heap_bytes / 8),
    ] {
        let r = run(|c| c.gc.header_map.max_bytes = bytes);
        let full: u64 = r.cycles.iter().map(|c| c.hm_full).sum();
        println!("{:>12} {:>10.1} {:>14}", label, r.gc_seconds() * 1e3, full);
    }

    println!("\nasynchronous flushing (cache at heap/32):");
    println!(
        "{:>12} {:>10} {:>14} {:>12}",
        "mode", "gc (ms)", "peak DRAM(KiB)", "async/GC"
    );
    for (label, asyncf) in [("sync", false), ("async", true)] {
        let r = run(|c| c.gc.write_cache.async_flush = asyncf);
        let peak = r
            .cycles
            .iter()
            .map(|c| c.cache_peak_bytes)
            .max()
            .unwrap_or(0);
        let cycles = r.cycles.len().max(1) as f64;
        let flushed: u64 = r.cycles.iter().map(|c| c.async_flushed).sum();
        println!(
            "{:>12} {:>10.1} {:>14} {:>12.1}",
            label,
            r.gc_seconds() * 1e3,
            peak >> 10,
            flushed as f64 / cycles
        );
    }
    println!(
        "\nPaper: the 1/32 defaults suffice for most apps (Fig. 11); page-rank/kmeans \
         keep gaining with more cache; async flushing costs ~6.9% while reclaiming DRAM early."
    );
}
