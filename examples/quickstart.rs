//! Quickstart: run one memory-intensive application on simulated NVM under
//! four collector configurations and compare GC behaviour.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use nvmgc_core::GcConfig;
use nvmgc_heap::DevicePlacement;
use nvmgc_workloads::{app, run_app, AppRunConfig};

fn main() {
    let spec = app("page-rank");
    println!(
        "workload: {} (avg object {:.0} B)",
        spec.name,
        spec.avg_object_bytes()
    );
    println!();
    println!(
        "{:<18} {:>6} {:>12} {:>12} {:>10} {:>8}",
        "config", "GCs", "GC time", "app time", "GC share", "vs base"
    );

    let mut base_gc = 0.0f64;
    let rows: Vec<(&str, AppRunConfig)> = vec![
        (
            "vanilla (NVM)",
            AppRunConfig::standard(spec.clone(), GcConfig::vanilla(28)),
        ),
        ("+writecache", {
            let c = AppRunConfig::standard(spec.clone(), GcConfig::plus_writecache(28, 0));
            with_sized_cache(c)
        }),
        ("+all", {
            let c = AppRunConfig::standard(spec.clone(), GcConfig::plus_all(28, 0));
            with_sized_cache(c)
        }),
        ("vanilla (DRAM)", {
            let mut c = AppRunConfig::standard(spec.clone(), GcConfig::vanilla(28));
            c.heap.placement = DevicePlacement::all_dram();
            c
        }),
    ];

    for (label, cfg) in rows {
        let r = run_app(&cfg).expect("run succeeds");
        let gc_s = r.gc_seconds();
        if base_gc == 0.0 {
            base_gc = gc_s;
        }
        println!(
            "{:<18} {:>6} {:>11.2}ms {:>11.2}ms {:>9.1}% {:>7.2}x",
            label,
            r.gc.cycles(),
            gc_s * 1e3,
            r.total_seconds() * 1e3,
            r.gc_share() * 100.0,
            base_gc / gc_s,
        );
    }
}

/// Sizes the write cache and header map at 1/32 of the heap, like the
/// paper's defaults.
fn with_sized_cache(mut cfg: AppRunConfig) -> AppRunConfig {
    let heap_bytes = cfg.heap_bytes();
    if cfg.gc.write_cache.enabled {
        cfg.gc.write_cache.max_bytes = (heap_bytes / 32).max(1 << 20);
    }
    if cfg.gc.header_map.enabled {
        cfg.gc.header_map.max_bytes = (heap_bytes / 32).max(1 << 20);
    }
    cfg
}
